#pragma once
// Runtime invariant auditor for the discrete-event core.
//
// ICSIM_CHECK(cond, msg) hard-fails (prints `file:line` + the violated
// condition, then aborts) when the environment variable ICSIM_CHECK is set
// to a nonzero value — and costs one predicted-not-taken branch otherwise:
// the condition expression is only evaluated while checking is on.
//
// The checks wired through engine/fabric/hca/tports guard the invariants
// the paper reproduction rests on:
//   * engine time is monotonic, and scheduling into the past is a hard
//     error under ICSIM_CHECK (instead of the silent clamp-and-count of
//     the fast path);
//   * fabric chunk/byte conservation at drain: everything injected is
//     delivered, dropped, or still in flight — nothing is double-counted
//     or leaked;
//   * buffer occupancies (Elan SDRAM, link in-flight counts) never go
//     negative and respect their configured capacity bounds.
//
// Independently of ICSIM_CHECK, the engine folds every executed event into
// a 64-bit FNV-1a digest (see Fnv1a below).  Two runs of the same workload
// with the same seed must produce the same digest — "same seed ⇒ same
// RunStats::event_digest" is the one-line determinism assertion used by
// tests and CI.

#include <cstdint>

namespace icsim::sim::check {

/// Is the auditor armed?  Cached read of the ICSIM_CHECK environment
/// variable ("", "0" = off); tests and harnesses can override it.
[[nodiscard]] bool enabled() noexcept;

/// Force the auditor on/off for this process (overrides the environment).
void set_enabled(bool on) noexcept;

/// Print `file:line: ICSIM_CHECK failed: expr (msg)` to stderr and abort.
[[noreturn]] void fail(const char* file, int line, const char* expr,
                       const char* msg) noexcept;

/// 64-bit FNV-1a accumulator.  The engine folds (timestamp, sequence) of
/// every executed event, so the digest fingerprints the entire event
/// stream: any reordering, extra, or missing event changes it.
class Fnv1a {
 public:
  /// Fold the 8 bytes of `v` (little-endian) into the hash.
  constexpr void fold(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ ((v >> (8 * i)) & 0xffu)) * kPrime;
    }
  }
  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return h_; }

 private:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h_ = kOffsetBasis;
};

}  // namespace icsim::sim::check

/// Audit `cond` when ICSIM_CHECK is armed; free when it is not (the
/// condition is not evaluated).  `msg` is a string literal describing the
/// invariant in domain terms.
#define ICSIM_CHECK(cond, msg)                                            \
  do {                                                                    \
    if (::icsim::sim::check::enabled() && !(cond)) {                      \
      ::icsim::sim::check::fail(__FILE__, __LINE__, #cond, msg);          \
    }                                                                     \
  } while (0)
