#pragma once
// Contended, FIFO-served resources.
//
// A FifoResource models anything that serves one request at a time in
// arrival order — a PCI-X bus doing DMA bursts, the Elan-4 NIC thread
// processor, a link transmitter.  The classic busy-until formulation gives
// exact FIFO semantics in O(1) per request:
//
//     start  = max(now, next_free)
//     finish = start + service_time
//
// The completion callback fires at `finish`.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace icsim::sim {

class FifoResource {
 public:
  FifoResource(Engine& engine, std::string name)
      : engine_(&engine), name_(std::move(name)) {}

  /// Enqueue a request needing `service` time; `on_done` fires when served.
  /// Returns the completion time (advisory when a callback is given).
  Time acquire(Time service, std::function<void()> on_done) {  // icsim-lint: allow(nodiscard-time)
    const Time start = next_free_ > engine_->now() ? next_free_ : engine_->now();
    const Time finish = start + service;
    next_free_ = finish;
    busy_accum_ += service;
    ++requests_;
    if (on_done) {
      engine_->post_at(finish, std::move(on_done));
    }
    return finish;
  }

  /// Reserve without a callback (caller tracks the returned finish time).
  [[nodiscard]] Time acquire(Time service) { return acquire(service, nullptr); }

  /// Earliest instant a new request could start service.
  [[nodiscard]] Time next_free() const { return next_free_; }
  [[nodiscard]] bool busy() const { return next_free_ > engine_->now(); }

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  /// Total service time accumulated (utilization = busy_time / elapsed).
  [[nodiscard]] Time busy_time() const { return busy_accum_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Engine* engine_;
  std::string name_;
  Time next_free_ = Time::zero();
  Time busy_accum_ = Time::zero();
  std::uint64_t requests_ = 0;
};

/// A FifoResource whose service time is derived from a byte count at a fixed
/// rate — buses and memory channels.
class BandwidthResource {
 public:
  BandwidthResource(Engine& engine, std::string name, Bandwidth bw,
                    Time per_request_overhead = Time::zero())
      : fifo_(engine, std::move(name)), bw_(bw), overhead_(per_request_overhead) {}

  Time transfer(std::uint64_t bytes, std::function<void()> on_done) {  // icsim-lint: allow(nodiscard-time)
    return fifo_.acquire(overhead_ + bw_.transfer_time(bytes), std::move(on_done));
  }
  [[nodiscard]] Time transfer(std::uint64_t bytes) { return transfer(bytes, nullptr); }

  /// Ordering point: fires after everything already queued, costing no
  /// service time (not even the per-request overhead).
  Time transfer_ordered(std::function<void()> on_done) {  // icsim-lint: allow(nodiscard-time)
    return fifo_.acquire(Time::zero(), std::move(on_done));
  }

  /// Occupy the resource for `d` without moving any bytes (fault injection:
  /// a stalled device serves nothing while the window lasts).  Queued and
  /// later requests are pushed back FIFO-fashion behind the stall.
  Time stall(Time d) { return fifo_.acquire(d); }  // icsim-lint: allow(nodiscard-time)

  [[nodiscard]] Bandwidth rate() const { return bw_; }
  [[nodiscard]] Time next_free() const { return fifo_.next_free(); }
  [[nodiscard]] std::uint64_t requests() const { return fifo_.requests(); }
  [[nodiscard]] Time busy_time() const { return fifo_.busy_time(); }

 private:
  FifoResource fifo_;
  Bandwidth bw_;
  Time overhead_;
};

}  // namespace icsim::sim
