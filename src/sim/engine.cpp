#include "sim/engine.hpp"

#include <cassert>
#include <utility>

namespace icsim::sim {

Time Engine::clamped(Time t) {
  if (t >= now_) return t;
  // Under the auditor a past schedule is a modeling bug, not a rounding
  // artifact: fail loudly instead of silently rewriting the timestamp.
  ICSIM_CHECK(t >= now_, "schedule into the simulated past");
  ++past_clamped_count_;
  if (past_clamped_metric_ == nullptr) {
    past_clamped_metric_ =
        &tracer_.metrics().counter("sim.schedule_past_clamped");
  }
  *past_clamped_metric_ = past_clamped_count_;
  return now_;
}

EventHandle Engine::schedule_at(Time t, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  queue_.push(Entry{clamped(t), next_seq_++, std::move(fn), alive});
  return EventHandle{std::move(alive)};
}

void Engine::sample_queue_depth() {
  if (!trace_id_.has_value()) {
    trace_id_ = tracer_.register_component(trace::Category::engine, "engine");
  }
  const auto t = now_;
  tracer_.counter(trace::Category::engine, *trace_id_, "queue_depth", t,
                  static_cast<double>(queue_.size()));
  tracer_.counter(trace::Category::engine, *trace_id_, "events_processed", t,
                  static_cast<double>(processed_));
}

void Engine::drop_cancelled(Entry&& tombstone) {
  // A cancelled entry leaves the queue without executing.  Count it: the
  // events_pending() invariant (scheduled == processed + dropped + pending)
  // must reconcile across runs that differ only in cancellation timing.
  (void)tombstone;  // the closure and tombstone die here
  ++cancelled_dropped_;
  if (cancelled_dropped_metric_ == nullptr) {
    cancelled_dropped_metric_ =
        &tracer_.metrics().counter("sim.cancelled_dropped");
  }
  *cancelled_dropped_metric_ = cancelled_dropped_;
}

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the closure must be moved out, so pop a
    // copy of the control fields first and steal the function via const_cast
    // (safe: the entry is removed immediately afterwards).
    auto& top = const_cast<Entry&>(queue_.top());
    Entry e{top.t, top.seq, std::move(top.fn), std::move(top.alive)};
    queue_.pop();
    if (e.alive && !*e.alive) {  // cancelled
      drop_cancelled(std::move(e));
      continue;
    }
    assert(e.t >= now_);
    ICSIM_CHECK(e.t >= now_, "engine time must be monotonic");
    now_ = e.t;
    ++processed_;
    digest_.fold(static_cast<std::uint64_t>(e.t.picoseconds()));
    digest_.fold(e.seq);
    // The event is now fired, not pending: flip the tombstone before the
    // closure runs so handles held across the firing answer pending() with
    // false and a late cancel() is a no-op (it would otherwise "cancel" an
    // event that already executed, silently).
    if (e.alive) *e.alive = false;
    // Periodic self-observation: queue depth + throughput, cheap enough to
    // key off the processed-event count (one branch when tracing is off).
    if (tracer_.enabled() && (processed_ & 1023u) == 0) sample_queue_depth();
    e.fn();
    return true;
  }
  return false;
}

Time Engine::run() {
  while (step()) {
  }
  return now_;
}

std::optional<Time> Engine::next_event_time() {
  while (!queue_.empty()) {
    const Entry& head = queue_.top();
    if (head.alive == nullptr || *head.alive) return head.t;
    auto& top = const_cast<Entry&>(queue_.top());
    Entry e{top.t, top.seq, std::move(top.fn), std::move(top.alive)};
    queue_.pop();
    drop_cancelled(std::move(e));
  }
  return std::nullopt;
}

Time Engine::run_until(Time deadline) {
  for (;;) {
    // Drop cancelled tombstones at the head so the deadline guard below
    // tests the next *live* event.  A dead head with t <= deadline would
    // pass the guard while step() skips it and executes the next live
    // event — which may lie past the deadline.
    const std::optional<Time> next = next_event_time();
    if (!next.has_value() || *next > deadline) break;
    step();
  }
  if (now_ < deadline && queue_.empty()) {
    return now_;
  }
  now_ = deadline > now_ ? deadline : now_;
  return now_;
}

}  // namespace icsim::sim
