#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace icsim::sim {

EventHandle Engine::schedule_at(Time t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument("Engine::schedule_at: time is in the past");
  }
  auto alive = std::make_shared<bool>(true);
  queue_.push(Entry{t, next_seq_++, std::move(fn), alive});
  return EventHandle{std::move(alive)};
}

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the closure must be moved out, so pop a
    // copy of the control fields first and steal the function via const_cast
    // (safe: the entry is removed immediately afterwards).
    auto& top = const_cast<Entry&>(queue_.top());
    Entry e{top.t, top.seq, std::move(top.fn), std::move(top.alive)};
    queue_.pop();
    if (!*e.alive) continue;  // cancelled
    assert(e.t >= now_);
    now_ = e.t;
    ++processed_;
    e.fn();
    return true;
  }
  return false;
}

Time Engine::run() {
  while (step()) {
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) {
    if (!step()) break;
  }
  if (now_ < deadline && queue_.empty()) {
    return now_;
  }
  now_ = deadline > now_ ? deadline : now_;
  return now_;
}

}  // namespace icsim::sim
