#include "sim/engine.hpp"

#include <cassert>
#include <utility>

namespace icsim::sim {

Time Engine::clamped(Time t) {
  if (t >= now_) return t;
  // Under the auditor a past schedule is a modeling bug, not a rounding
  // artifact: fail loudly instead of silently rewriting the timestamp.
  ICSIM_CHECK(t >= now_, "schedule into the simulated past");
  if (past_clamped_ == nullptr) {
    past_clamped_ = &tracer_.metrics().counter("sim.schedule_past_clamped");
  }
  ++*past_clamped_;
  return now_;
}

EventHandle Engine::schedule_at(Time t, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  queue_.push(Entry{clamped(t), next_seq_++, std::move(fn), alive});
  return EventHandle{std::move(alive)};
}

void Engine::sample_queue_depth() {
  if (trace_id_ == 0) {
    trace_id_ = tracer_.register_component(trace::Category::engine, "engine");
  }
  const auto t = now_;
  tracer_.counter(trace::Category::engine, trace_id_, "queue_depth", t,
                  static_cast<double>(queue_.size()));
  tracer_.counter(trace::Category::engine, trace_id_, "events_processed", t,
                  static_cast<double>(processed_));
}

bool Engine::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the closure must be moved out, so pop a
    // copy of the control fields first and steal the function via const_cast
    // (safe: the entry is removed immediately afterwards).
    auto& top = const_cast<Entry&>(queue_.top());
    Entry e{top.t, top.seq, std::move(top.fn), std::move(top.alive)};
    queue_.pop();
    if (e.alive && !*e.alive) continue;  // cancelled
    assert(e.t >= now_);
    ICSIM_CHECK(e.t >= now_, "engine time must be monotonic");
    now_ = e.t;
    ++processed_;
    digest_.fold(static_cast<std::uint64_t>(e.t.picoseconds()));
    digest_.fold(e.seq);
    // Periodic self-observation: queue depth + throughput, cheap enough to
    // key off the processed-event count (one branch when tracing is off).
    if (tracer_.enabled() && (processed_ & 1023u) == 0) sample_queue_depth();
    e.fn();
    return true;
  }
  return false;
}

Time Engine::run() {
  while (step()) {
  }
  return now_;
}

Time Engine::run_until(Time deadline) {
  for (;;) {
    // Drop cancelled tombstones at the head so the deadline guard below
    // tests the next *live* event.  A dead head with t <= deadline would
    // pass the guard while step() skips it and executes the next live
    // event — which may lie past the deadline.
    while (!queue_.empty()) {
      const Entry& head = queue_.top();
      if (head.alive == nullptr || *head.alive) break;
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().t > deadline) break;
    step();
  }
  if (now_ < deadline && queue_.empty()) {
    return now_;
  }
  now_ = deadline > now_ ? deadline : now_;
  return now_;
}

}  // namespace icsim::sim
