#pragma once
// Simulated time for the discrete-event engine.
//
// Time is an integer count of picoseconds.  Picosecond resolution lets us
// represent single-byte serialization on multi-GB/s links exactly enough
// (1 byte at 1 GB/s = 1 ns = 1000 ps) while int64 still covers ~106 days of
// simulated time, far beyond any experiment in this repository.

#include <cstdint>
#include <compare>
#include <limits>
#include <string>
#include <type_traits>

namespace icsim::sim {

/// Strongly typed simulated time (duration or absolute instant).
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time ps(std::int64_t v) { return Time{v}; }
  [[nodiscard]] static constexpr Time ns(double v) { return Time{round_ps(v * 1e3)}; }
  [[nodiscard]] static constexpr Time us(double v) { return Time{round_ps(v * 1e6)}; }
  [[nodiscard]] static constexpr Time ms(double v) { return Time{round_ps(v * 1e9)}; }
  [[nodiscard]] static constexpr Time sec(double v) { return Time{round_ps(v * 1e12)}; }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  [[nodiscard]] static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t picoseconds() const { return ps_; }
  [[nodiscard]] constexpr double to_ns() const { return static_cast<double>(ps_) * 1e-3; }
  [[nodiscard]] constexpr double to_us() const { return static_cast<double>(ps_) * 1e-6; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ps_) * 1e-9; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time o) { ps_ += o.ps_; return *this; }
  constexpr Time& operator-=(Time o) { ps_ -= o.ps_; return *this; }
  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  // Templated so `t * 3` stays an exact integral match instead of becoming
  // ambiguous against the double overload below.
  template <class I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
  friend constexpr Time operator*(Time a, I k) { return Time{a.ps_ * k}; }
  template <class I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
  friend constexpr Time operator*(I k, Time a) { return Time{a.ps_ * k}; }
  /// Fractional scaling stays in picosecond space: `d * 1.5` rounds once,
  /// where `Time::sec(d.to_seconds() * 1.5)` rounds through a lossy double
  /// export first (flagged by icsim_lint's unit-discipline rule).
  friend constexpr Time operator*(Time a, double k) {
    return Time{round_ps(static_cast<double>(a.ps_) * k)};
  }
  friend constexpr Time operator*(double k, Time a) { return a * k; }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t v) : ps_(v) {}
  /// Round-to-nearest conversion so 10 us * 1.5 is exactly 15 us even when
  /// the double arithmetic lands at 14999999999.999998 ps.
  [[nodiscard]] static constexpr std::int64_t round_ps(double v) {
    return static_cast<std::int64_t>(v >= 0 ? v + 0.5 : v - 0.5);
  }
  std::int64_t ps_ = 0;
};

/// Link/bus throughput.  Stored as bytes per second; converts a byte count
/// into the simulated time needed to serialize it.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bytes_per_sec(double v) { return Bandwidth{v}; }
  [[nodiscard]] static constexpr Bandwidth mb_per_sec(double v) { return Bandwidth{v * 1e6}; }
  [[nodiscard]] static constexpr Bandwidth gb_per_sec(double v) { return Bandwidth{v * 1e9}; }
  /// Link signalling rate in Gbit/s of *data* (after encoding overhead).
  [[nodiscard]] static constexpr Bandwidth gbit_per_sec(double v) { return Bandwidth{v * 1e9 / 8.0}; }

  [[nodiscard]] constexpr double bytes_per_second() const { return bps_; }
  [[nodiscard]] constexpr double mb_per_second() const { return bps_ * 1e-6; }

  /// Time to push `bytes` through this pipe.
  [[nodiscard]] Time transfer_time(std::uint64_t bytes) const {
    return Time::sec(static_cast<double>(bytes) / bps_);
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;

 private:
  constexpr explicit Bandwidth(double v) : bps_(v) {}
  double bps_ = 1.0;
};

}  // namespace icsim::sim
