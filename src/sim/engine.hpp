#pragma once
// The discrete-event engine.
//
// Single-threaded and fully deterministic: events at equal timestamps fire in
// scheduling order (a monotone sequence number breaks ties).  All model
// components — links, NICs, CPUs, MPI transports — schedule closures here.
//
// Two scheduling flavors:
//   * post_at/post_in   — fire-and-forget, no cancellation, no allocation
//                         beyond the closure itself (the hot path);
//   * schedule_at/..._in — returns an EventHandle that can cancel the event
//                         (allocates a shared tombstone per call).
//
// The engine owns the trace::Tracer so every component holding an Engine&
// can emit trace events and metrics without extra wiring (see trace/).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "sim/check.hpp"
#include "sim/time.hpp"
#include "trace/tracer.hpp"

namespace icsim::sim {

/// Handle that lets the scheduler of an event cancel it before it fires.
/// Cheap to copy; cancellation is a tombstone (the queue entry stays until
/// its time arrives and is then dropped).
///
/// Lifecycle: pending() is true from schedule until the event either fires
/// or is cancelled.  The engine flips the tombstone *before* invoking the
/// event's closure, so a handle held across the firing reports the event as
/// no longer pending, and a late cancel() is a no-op instead of silently
/// "cancelling" something that already ran.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }
  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule cancellable `fn` at absolute time `t`; `t < now()` clamps to
  /// now() and counts (see past_schedules_clamped) — or hard-fails when the
  /// ICSIM_CHECK auditor is armed (a past schedule means a model component
  /// computed a timestamp from stale state).
  EventHandle schedule_at(Time t, std::function<void()> fn);

  /// Schedule cancellable `fn` to run `delay` after now.
  EventHandle schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Fast path: schedule `fn` at absolute time `t` with no cancellation
  /// handle — skips the per-event tombstone allocation entirely.
  void post_at(Time t, std::function<void()> fn) {
    queue_.push(Entry{clamped(t), next_seq_++, std::move(fn), nullptr});
  }

  /// Fast path: schedule `fn` to run `delay` after now (not cancellable).
  void post_in(Time delay, std::function<void()> fn) {
    post_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains.  Returns the final simulated time,
  /// which callers that only need side effects may ignore (now() has it).
  Time run();  // icsim-lint: allow(nodiscard-time)

  /// Run until the queue drains or simulated time would pass `deadline`.
  Time run_until(Time deadline);  // icsim-lint: allow(nodiscard-time)

  /// Events processed so far (for perf bookkeeping and tests).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

  /// Cancelled events dropped from the queue without executing — whether
  /// skipped by step() when their time arrived or drained from the head by
  /// run_until()'s deadline guard.  Queue-depth accounting must satisfy
  /// scheduled == processed + cancelled_dropped + pending; surfacing the
  /// middle term keeps otherwise-identical runs that differ only in
  /// cancellation timing reconcilable.  Published as "sim.cancelled_dropped".
  [[nodiscard]] std::uint64_t events_cancelled_dropped() const {
    return cancelled_dropped_;
  }

  /// Timestamp of the next live (non-tombstoned) event, or nullopt when the
  /// queue is drained.  Tombstones found at the head are dropped and counted
  /// exactly as run_until()'s drain does.  The parallel engine uses this to
  /// compute the next barrier window across partitions.
  [[nodiscard]] std::optional<Time> next_event_time();

  /// FNV-1a fingerprint of the executed event stream: (timestamp, sequence)
  /// of every event, folded in execution order.  Two runs of the same
  /// workload with the same seed must agree — the determinism contract
  /// asserted by tests and CI (see sim/check.hpp).
  [[nodiscard]] std::uint64_t event_digest() const { return digest_.value(); }

  /// How many schedule requests asked for a time in the past and were
  /// clamped to now().  Also surfaced in the metrics registry as
  /// "sim.schedule_past_clamped".  A nonzero count usually means a model
  /// component computed a timestamp from stale state.
  [[nodiscard]] std::uint64_t past_schedules_clamped() const {
    return past_clamped_count_;
  }

  /// Tracing & metrics attached to this engine (see trace/trace.hpp for
  /// the instrumentation macros).
  [[nodiscard]] trace::Tracer& tracer() { return tracer_; }
  [[nodiscard]] const trace::Tracer& tracer() const { return tracer_; }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;  ///< null for post_at (not cancellable)
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  bool step();
  [[nodiscard]] Time clamped(Time t);
  void sample_queue_depth();
  void drop_cancelled(Entry&& tombstone);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  check::Fnv1a digest_;
  trace::Tracer tracer_;
  // Counters are plain members — the engine itself is the source of truth.
  // The metrics-registry mirrors are bound lazily below, with explicit
  // "bound yet?" state (std::optional / nullable mirror pointer) instead of
  // zero-value sentinels: a registry id of 0 or an unbound mirror must never
  // be confusable with "counter is zero" or "not registered yet".
  std::uint64_t past_clamped_count_ = 0;
  std::uint64_t cancelled_dropped_ = 0;
  std::uint64_t* past_clamped_metric_ = nullptr;   ///< mirror into metrics
  std::uint64_t* cancelled_dropped_metric_ = nullptr;
  std::optional<std::uint32_t> trace_id_;  ///< registered trace component
};

}  // namespace icsim::sim
