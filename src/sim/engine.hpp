#pragma once
// The discrete-event engine.
//
// Single-threaded and fully deterministic: events at equal timestamps fire in
// scheduling order (a monotone sequence number breaks ties).  All model
// components — links, NICs, CPUs, MPI transports — schedule closures here.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace icsim::sim {

/// Handle that lets the scheduler of an event cancel it before it fires.
/// Cheap to copy; cancellation is a tombstone (the queue entry stays until
/// its time arrives and is then dropped).
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (alive_) *alive_ = false;
  }
  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now).
  EventHandle schedule_at(Time t, std::function<void()> fn);

  /// Schedule `fn` to run `delay` after now.
  EventHandle schedule_in(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains.  Returns the final simulated time.
  Time run();

  /// Run until the queue drains or simulated time would pass `deadline`.
  Time run_until(Time deadline);

  /// Events processed so far (for perf bookkeeping and tests).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }
  [[nodiscard]] std::size_t events_pending() const { return queue_.size(); }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  bool step();

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace icsim::sim
