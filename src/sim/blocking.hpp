#pragma once
// Fiber-side blocking primitives that bridge fibers and the event engine.

#include <cassert>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fiber.hpp"
#include "sim/time.hpp"

namespace icsim::sim {

/// Suspend the current fiber for a simulated duration.
inline void sleep_for(Engine& engine, Time d) {
  Fiber* const f = Fiber::current();
  assert(f != nullptr && "sleep_for outside a fiber");
  engine.post_in(d, [f] { f->resume(); });
  Fiber::yield();
}

/// Suspend the current fiber until an absolute simulated time.
inline void sleep_until(Engine& engine, Time t) {
  const Time now = engine.now();
  sleep_for(engine, t > now ? t - now : Time::zero());
}

/// One-shot condition: fibers wait(); once fire() is called they are resumed
/// (and later waiters return immediately).  Used for message completions.
class Trigger {
 public:
  explicit Trigger(Engine& engine) : engine_(&engine) {}

  [[nodiscard]] bool fired() const { return fired_; }

  void wait() {
    if (fired_) return;
    Fiber* const f = Fiber::current();
    assert(f != nullptr && "Trigger::wait outside a fiber");
    waiters_.push_back(f);
    Fiber::yield();
  }

  void fire() {
    if (fired_) return;
    fired_ = true;
    // Resume waiters via scheduled events so fire() is safe to call from any
    // context (fiber or engine callback) without unbounded recursion.
    for (Fiber* f : waiters_) {
      engine_->post_in(Time::zero(), [f] { f->resume(); });
    }
    waiters_.clear();
  }

 private:
  Engine* engine_;
  bool fired_ = false;
  std::vector<Fiber*> waiters_;
};

}  // namespace icsim::sim
