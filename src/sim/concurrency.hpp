#pragma once
// Process-wide host-parallelism bookkeeping — the nested-parallelism guard.
//
// Two layers of the system spawn OS threads: the sweep driver's -j worker
// pool (one simulation per point, src/driver/) and the intra-run parallel
// engine (partitions of one simulation, src/par/).  Running both at full
// width multiplies them: a -j8 sweep of scenarios that each ask for 8
// intra-run threads would put 64 runnable threads on the box.  The sweep
// pool announces its width here; the parallel engine consults it and clamps
// its own thread count so the product stays within hardware concurrency.
//
// The clamp changes host scheduling only — never simulated results.  The
// parallel engine's event digest is byte-identical for any thread count
// (the determinism contract of src/par/), which is precisely what makes a
// host-dependent clamp admissible: CI diffing sweep outputs across -j and
// machines never sees it.
//
// Host state, deliberately outside the model: values here must never feed
// simulated time.  The determinism-taint lint pass polices that boundary.

namespace icsim::sim {

/// Announce how many sweep/driver worker threads are currently running
/// simulations (1 = no external pool).  The sweep runner brackets its pool
/// with set_external_workers(jobs) / set_external_workers(1).
void set_external_workers(int workers) noexcept;
[[nodiscard]] int external_workers() noexcept;

/// Clamp an intra-run thread request against the external pool: with no
/// pool running, the request is honored as-is (deliberate oversubscription
/// is how thread-count invariance is tested on small hosts); under a pool
/// of W workers the grant is min(request, hardware_concurrency / W), and
/// never less than 1.
[[nodiscard]] int clamp_intra_run_threads(int requested) noexcept;

}  // namespace icsim::sim
