// NPB CG correctness: the matrix generator against structural properties
// and a dense reference, CG convergence, decomposition/transport
// invariance of zeta, and the NPB class-S verification value.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/npb/cg.hpp"
#include "apps/npb/makea.hpp"
#include "apps/npb/randlc.hpp"
#include "core/cluster.hpp"

namespace icsim::apps::npb {
namespace {

CgResult run_on(const core::ClusterConfig& cc, const CgConfig& cfg) {
  core::Cluster cluster(cc);
  CgResult result;
  cluster.run([&](mpi::Mpi& mpi) {
    CgResult r = run_cg(mpi, cfg);
    if (mpi.rank() == 0) result = r;
  });
  return result;
}

CgClass tiny_class() {
  // A miniature class for fast tests (n divisible by 8).
  return CgClass{"T", 240, 5, 5, 5.0, 0.1};
}

TEST(Randlc, MatchesKnownSequenceProperties) {
  // The NPB generator: deterministic, values in (0,1).
  double x = 314159265.0;
  double prev = -1.0;
  bool varies = false;
  for (int i = 0; i < 1000; ++i) {
    const double v = randlc(&x, 1220703125.0);
    ASSERT_GT(v, 0.0);
    ASSERT_LT(v, 1.0);
    if (v != prev) varies = true;
    prev = v;
  }
  EXPECT_TRUE(varies);
  // Reference: after NPB's init draw the stream is reproducible.
  double y = 314159265.0;
  double z = 314159265.0;
  for (int i = 0; i < 100; ++i) (void)randlc(&y, 1220703125.0);
  for (int i = 0; i < 100; ++i) (void)randlc(&z, 1220703125.0);
  EXPECT_EQ(y, z);
}

TEST(Makea, StructureIsSane) {
  const Csr m = make_cg_matrix(tiny_class());
  EXPECT_EQ(m.n, 240);
  EXPECT_EQ(m.rowptr.size(), 241u);
  EXPECT_EQ(m.rowptr.back(), static_cast<int>(m.nnz()));
  // Every row nonempty (the diagonal shift guarantees it).
  for (int r = 0; r < m.n; ++r) {
    EXPECT_GT(m.rowptr[static_cast<std::size_t>(r) + 1],
              m.rowptr[static_cast<std::size_t>(r)]);
  }
  // Column indices valid and strictly increasing within a row.
  for (int r = 0; r < m.n; ++r) {
    for (int k = m.rowptr[static_cast<std::size_t>(r)];
         k < m.rowptr[static_cast<std::size_t>(r) + 1]; ++k) {
      ASSERT_GE(m.col[static_cast<std::size_t>(k)], 0);
      ASSERT_LT(m.col[static_cast<std::size_t>(k)], m.n);
      if (k > m.rowptr[static_cast<std::size_t>(r)]) {
        ASSERT_GT(m.col[static_cast<std::size_t>(k)],
                  m.col[static_cast<std::size_t>(k) - 1]);
      }
    }
  }
}

TEST(Makea, MatrixIsSymmetric) {
  const Csr m = make_cg_matrix(tiny_class());
  std::vector<std::vector<double>> dense(
      static_cast<std::size_t>(m.n), std::vector<double>(static_cast<std::size_t>(m.n), 0.0));
  for (int r = 0; r < m.n; ++r) {
    for (int k = m.rowptr[static_cast<std::size_t>(r)];
         k < m.rowptr[static_cast<std::size_t>(r) + 1]; ++k) {
      dense[static_cast<std::size_t>(r)][static_cast<std::size_t>(
          m.col[static_cast<std::size_t>(k)])] = m.val[static_cast<std::size_t>(k)];
    }
  }
  for (int i = 0; i < m.n; ++i) {
    for (int j = i + 1; j < m.n; ++j) {
      ASSERT_NEAR(dense[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                  dense[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)], 1e-12);
    }
  }
}

TEST(Makea, Deterministic) {
  const Csr a = make_cg_matrix(tiny_class());
  const Csr b = make_cg_matrix(tiny_class());
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.val, b.val);
}

TEST(Cg, ConvergesOnTinyClass) {
  CgConfig cfg;
  cfg.cls = tiny_class();
  const auto r = run_on(core::elan_cluster(1), cfg);
  EXPECT_TRUE(std::isfinite(r.zeta));
  // CG on an SPD system must drive the solve residual down hard.
  EXPECT_LT(r.final_rnorm, 1e-8);
  EXPECT_GT(r.mops_per_process, 0.0);
}

TEST(Cg, DecompositionInvariance) {
  CgConfig cfg;
  cfg.cls = tiny_class();
  const auto r1 = run_on(core::elan_cluster(1), cfg);
  const auto r4 = run_on(core::elan_cluster(4), cfg);
  const auto r8 = run_on(core::elan_cluster(8), cfg);  // rectangular grid
  EXPECT_NEAR(r4.zeta, r1.zeta, 1e-10);
  EXPECT_NEAR(r8.zeta, r1.zeta, 1e-10);
}

TEST(Cg, TransportInvariance) {
  CgConfig cfg;
  cfg.cls = tiny_class();
  const auto ib = run_on(core::ib_cluster(4), cfg);
  const auto el = run_on(core::elan_cluster(4), cfg);
  EXPECT_DOUBLE_EQ(ib.zeta, el.zeta);
}

TEST(Cg, NonPowerOfTwoThrows) {
  CgConfig cfg;
  cfg.cls = tiny_class();
  core::Cluster cluster(core::elan_cluster(3));
  EXPECT_THROW(cluster.run([&](mpi::Mpi& mpi) { run_cg(mpi, cfg); }),
               std::invalid_argument);
}

TEST(Cg, ClassSVerification) {
  // NPB reference: class S zeta = 8.5971775078648.  Our makea reproduces
  // the published random streams bit-for-bit, so this matches exactly.
  CgConfig cfg;
  cfg.cls = class_S();
  const auto r = run_on(core::elan_cluster(2), cfg);
  EXPECT_NEAR(r.zeta, 8.5971775078648, 1e-10);
}

TEST(Cg, ClassWVerification) {
  // NPB reference: class W zeta = 10.362595087124.
  CgConfig cfg;
  cfg.cls = class_W();
  const auto r = run_on(core::elan_cluster(4), cfg);
  EXPECT_NEAR(r.zeta, 10.362595087124, 1e-10);
}

}  // namespace
}  // namespace icsim::apps::npb
