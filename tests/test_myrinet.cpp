// Myrinet/MPICH-GM extension network: MPI semantics hold, calibration
// lands in the Liu-et-al. band, and the Section 3.3.2 copy-block property
// (no registration activity below 16 kB) is real in the model.

#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.hpp"
#include "microbench/pingpong.hpp"

namespace icsim {
namespace {

TEST(Myrinet, DataIntegrityAcrossSizes) {
  core::Cluster cluster(core::myrinet_cluster(2));
  cluster.run([&](mpi::Mpi& mpi) {
    for (const std::size_t bytes : {std::size_t{0}, std::size_t{100},
                                    std::size_t{16384}, std::size_t{16385},
                                    std::size_t{200000}}) {
      std::vector<std::byte> buf(bytes + 1, std::byte{7});
      if (mpi.rank() == 0) {
        mpi.send(buf.data(), bytes, 1, 1);
      } else {
        const auto st = mpi.recv(buf.data(), buf.size(), 0, 1);
        EXPECT_EQ(st.bytes, bytes);
      }
    }
  });
}

TEST(Myrinet, LatencyInGmBand) {
  microbench::PingPongOptions o;
  o.sizes = {0};
  o.repetitions = 30;
  o.warmup = 4;
  const auto r = microbench::run_pingpong(core::myrinet_cluster(2), o);
  // Liu et al.: MPICH-GM over Myrinet 2000 at about 6.5-7 us.
  EXPECT_GT(r[0].latency_us, 5.0);
  EXPECT_LT(r[0].latency_us, 9.0);
}

TEST(Myrinet, PeakBandwidthAbout240) {
  microbench::PingPongOptions o;
  o.sizes = {1 << 20};
  o.repetitions = 8;
  o.warmup = 2;
  const auto r = microbench::run_pingpong(core::myrinet_cluster(2), o);
  EXPECT_NEAR(r[0].bandwidth_mbs, 240.0, 25.0);
}

TEST(Myrinet, SlowerThanBothStudyNetworks) {
  microbench::PingPongOptions o;
  o.sizes = {8192};
  o.repetitions = 20;
  o.warmup = 3;
  const auto my = microbench::run_pingpong(core::myrinet_cluster(2), o);
  const auto ib = microbench::run_pingpong(core::ib_cluster(2), o);
  const auto el = microbench::run_pingpong(core::elan_cluster(2), o);
  EXPECT_LT(my[0].bandwidth_mbs, ib[0].bandwidth_mbs);
  EXPECT_LT(my[0].bandwidth_mbs, el[0].bandwidth_mbs);
}

TEST(Myrinet, NoRegistrationBelowCopyBlockThreshold) {
  // Section 3.3.2: "buffers are used by MPICH/GM for messages smaller than
  // 16 KB, which is why the buffer re-use benchmark does not vary below
  // this size."  Below 16 kB no application buffer is ever registered.
  core::ClusterConfig cc = core::myrinet_cluster(2);
  core::Cluster cluster(cc);
  std::uint64_t misses = 0;
  cluster.run([&](mpi::Mpi& mpi) {
    std::vector<std::byte> buf(8192);
    for (int i = 0; i < 10; ++i) {
      if (mpi.rank() == 0) {
        mpi.send(buf.data(), buf.size(), 1, 0);
      } else {
        mpi.recv(buf.data(), buf.size(), 0, 0);
      }
    }
    if (mpi.rank() == 0) {
      auto& t = dynamic_cast<mpi::MvapichTransport&>(mpi.transport());
      misses = t.hca().reg_cache().stats().misses;
    }
  });
  EXPECT_EQ(misses, 0u);

  // Above the threshold, rendezvous registers the user buffers.
  core::Cluster cluster2(core::myrinet_cluster(2));
  cluster2.run([&](mpi::Mpi& mpi) {
    std::vector<std::byte> buf(65536);
    if (mpi.rank() == 0) {
      mpi.send(buf.data(), buf.size(), 1, 0);
    } else {
      mpi.recv(buf.data(), buf.size(), 0, 0);
      auto& t = dynamic_cast<mpi::MvapichTransport&>(mpi.transport());
      EXPECT_GT(t.hca().reg_cache().stats().misses, 0u);
    }
  });
}

TEST(Myrinet, CollectivesWork) {
  core::Cluster cluster(core::myrinet_cluster(4, 2));
  cluster.run([&](mpi::Mpi& mpi) {
    const double s = mpi.allreduce(1.0, mpi::ReduceOp::sum);
    EXPECT_DOUBLE_EQ(s, 8.0);
    mpi.barrier();
  });
}

}  // namespace
}  // namespace icsim
