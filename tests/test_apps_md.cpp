// Physics and parallel-correctness tests for the mini-MD application.
//
// The decisive checks: the physics must be invariant under the domain
// decomposition (1 rank vs 8 ranks agree), under the transport (InfiniBand
// and Quadrics runs produce identical trajectories — only time differs),
// and under the overlap optimization.  Plus the classical MD invariants:
// energy conservation, momentum conservation, neighbour-list correctness.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/lammps/md.hpp"
#include "core/cluster.hpp"

namespace icsim::apps::md {
namespace {

MdConfig small_ljs(int cells) {
  MdConfig c = ljs_config();
  c.cells_x = c.cells_y = c.cells_z = cells;
  c.steps = 25;
  return c;
}

MdResult run_on(const core::ClusterConfig& cc, const MdConfig& mc) {
  core::Cluster cluster(cc);
  MdResult result;
  cluster.run([&](mpi::Mpi& mpi) {
    MdResult r = run_md(mpi, mc);
    if (mpi.rank() == 0) result = r;
  });
  return result;
}

TEST(MdPhysics, EnergyConservationLjs) {
  const auto r = run_on(core::elan_cluster(1), small_ljs(5));
  EXPECT_LT(r.total_energy_drift, 5e-3);
  EXPECT_GT(r.pair_evals, 0u);
}

TEST(MdPhysics, MomentumConservation) {
  const auto r = run_on(core::elan_cluster(1), small_ljs(5));
  // Started at zero; symplectic integration + pairwise forces keep it ~0.
  EXPECT_LT(r.momentum_abs, 1e-9 * std::sqrt(static_cast<double>(r.natoms_global)));
}

TEST(MdPhysics, EnergyConservationMembrane) {
  MdConfig c = membrane_config();
  c.cells_x = c.cells_y = c.cells_z = 5;
  c.steps = 25;
  const auto r = run_on(core::elan_cluster(4), c);
  EXPECT_LT(r.total_energy_drift, 5e-3);
}

TEST(MdPhysics, AtomCountConservedAcrossMigration) {
  MdConfig c = small_ljs(4);
  c.steps = 30;  // crosses three migration events
  const auto r = run_on(core::elan_cluster(8), c);
  EXPECT_EQ(r.natoms_global, 8ull * 4 * 4 * 4 * 4);  // ranks * cells^3 * 4
}

TEST(MdPhysics, DecompositionInvariance) {
  // Same GLOBAL problem on 1 rank and on 8 ranks: identical physics.
  MdConfig one = small_ljs(8);
  MdConfig eight = small_ljs(4);  // 2x2x2 grid of 4-cell bricks = 8 cells
  const auto r1 = run_on(core::elan_cluster(1), one);
  const auto r8 = run_on(core::elan_cluster(8), eight);
  EXPECT_EQ(r1.natoms_global, r8.natoms_global);
  EXPECT_NEAR(r1.final_potential, r8.final_potential,
              1e-7 * std::abs(r1.final_potential));
  EXPECT_NEAR(r1.final_kinetic, r8.final_kinetic,
              1e-7 * std::abs(r1.final_kinetic));
}

TEST(MdPhysics, TransportInvariance) {
  // InfiniBand and Quadrics must move identical data: same physics, and
  // only the simulated clock may differ.
  const MdConfig c = small_ljs(4);
  const auto ib = run_on(core::ib_cluster(4), c);
  const auto el = run_on(core::elan_cluster(4), c);
  EXPECT_DOUBLE_EQ(ib.final_potential, el.final_potential);
  EXPECT_DOUBLE_EQ(ib.final_kinetic, el.final_kinetic);
  EXPECT_EQ(ib.pair_evals, el.pair_evals);
}

TEST(MdPhysics, OverlapInvariance) {
  // The overlapped force path must not change the trajectory.
  MdConfig plain = small_ljs(4);
  MdConfig over = plain;
  over.overlap_comm = true;
  const auto a = run_on(core::elan_cluster(8), plain);
  const auto b = run_on(core::elan_cluster(8), over);
  EXPECT_DOUBLE_EQ(a.final_potential, b.final_potential);
  EXPECT_DOUBLE_EQ(a.final_kinetic, b.final_kinetic);
}

TEST(MdPhysics, ScaledProblemGrowsWithRanks) {
  const MdConfig c = small_ljs(4);
  const auto r1 = run_on(core::elan_cluster(1), c);
  const auto r4 = run_on(core::elan_cluster(4), c);
  EXPECT_EQ(r4.natoms_global, 4 * r1.natoms_global);
}

TEST(MdPhysics, HaloTrafficExists) {
  const auto r = run_on(core::elan_cluster(8), small_ljs(4));
  EXPECT_GT(r.halo_bytes, 100000u);
}

TEST(MdPhysics, RejectsTooSmallBox) {
  MdConfig c = small_ljs(1);  // 1 cell < cutoff+skin
  core::Cluster cluster(core::elan_cluster(1));
  EXPECT_THROW(cluster.run([&](mpi::Mpi& mpi) { run_md(mpi, c); }),
               std::invalid_argument);
}

TEST(MdNeighbor, MatchesBruteForce) {
  // Build a small single-rank system and compare the binned list against
  // an O(N^2) reference.
  core::Cluster cluster(core::elan_cluster(1));
  cluster.run([&](mpi::Mpi& mpi) {
    MdConfig c = small_ljs(3);
    MdSimulation sim(mpi, c);
    sim.setup();
    const Atoms& a = sim.atoms();
    const NeighborList& list = sim.neighbor_list();
    const double cutneigh = c.cutoff + c.skin;
    const double cutsq = cutneigh * cutneigh;
    for (int i = 0; i < a.nlocal; ++i) {
      std::size_t count = 0;
      for (int j = 0; j < a.nall; ++j) {
        if (j == i) continue;
        const double dx = a.x[static_cast<std::size_t>(i)] - a.x[static_cast<std::size_t>(j)];
        const double dy = a.y[static_cast<std::size_t>(i)] - a.y[static_cast<std::size_t>(j)];
        const double dz = a.z[static_cast<std::size_t>(i)] - a.z[static_cast<std::size_t>(j)];
        if (dx * dx + dy * dy + dz * dz <= cutsq) ++count;
      }
      const auto in_list = static_cast<std::size_t>(
          list.first[static_cast<std::size_t>(i) + 1] -
          list.first[static_cast<std::size_t>(i)]);
      ASSERT_EQ(in_list, count) << "atom " << i;
    }
  });
}

TEST(MdGrid, FactorizationsAreCubic) {
  const ProcGrid g8(8, 0);
  EXPECT_EQ(g8.px * g8.py * g8.pz, 8);
  EXPECT_EQ(g8.px, 2);
  EXPECT_EQ(g8.py, 2);
  EXPECT_EQ(g8.pz, 2);
  const ProcGrid g12(12, 5);
  EXPECT_EQ(g12.px * g12.py * g12.pz, 12);
  const ProcGrid g1(1, 0);
  EXPECT_EQ(g1.px, 1);
}

TEST(MdGrid, NeighbourWraps) {
  const ProcGrid g(8, 0);  // 2x2x2, my coords (0,0,0)
  EXPECT_EQ(g.neighbour(0, -1), g.neighbour(0, +1));  // wrap with dims 2
  const ProcGrid g2(27, 13);  // 3x3x3 center
  EXPECT_NE(g2.neighbour(0, -1), g2.neighbour(0, +1));
}

}  // namespace
}  // namespace icsim::apps::md
