// MPI semantics over BOTH transports: data integrity across the eager and
// rendezvous paths, non-overtaking order, wildcards, nonblocking
// completion, sendrecv, and deadlock detection.  Everything is
// parameterized over the network so the two radically different protocol
// stacks must satisfy the same contract.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "core/cluster.hpp"

namespace icsim {
namespace {

using core::ClusterConfig;
using core::Network;

class MpiSemantics : public ::testing::TestWithParam<Network> {
 protected:
  [[nodiscard]] ClusterConfig cfg(int nodes, int ppn = 1) const {
    switch (GetParam()) {
      case Network::infiniband: return core::ib_cluster(nodes, ppn);
      case Network::quadrics: return core::elan_cluster(nodes, ppn);
      case Network::myrinet: return core::myrinet_cluster(nodes, ppn);
    }
    return core::ib_cluster(nodes, ppn);
  }
};

std::vector<std::byte> pattern_bytes(std::size_t n, int seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + static_cast<std::size_t>(seed) * 7) & 0xff);
  }
  return v;
}

TEST_P(MpiSemantics, SmallMessageRoundTripsIntact) {
  core::Cluster cluster(cfg(2));
  bool checked = false;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto data = pattern_bytes(64, 3);
    if (mpi.rank() == 0) {
      mpi.send(data.data(), data.size(), 1, 5);
    } else {
      std::vector<std::byte> buf(64);
      const auto st = mpi.recv(buf.data(), buf.size(), 0, 5);
      EXPECT_EQ(st.bytes, 64u);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(buf, data);
      checked = true;
    }
  });
  EXPECT_TRUE(checked);
}

// Sweep across the eager threshold, the chunking boundary, and into
// rendezvous/get territory on both transports.
class MpiMessageSizes
    : public ::testing::TestWithParam<std::tuple<Network, std::size_t>> {};

TEST_P(MpiMessageSizes, PayloadIntactAtEverySize) {
  const auto [network, bytes] = GetParam();
  ClusterConfig c = network == Network::infiniband ? core::ib_cluster(2)
                                                   : core::elan_cluster(2);
  core::Cluster cluster(c);
  bool checked = false;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto data = pattern_bytes(bytes, static_cast<int>(bytes % 97));
    if (mpi.rank() == 0) {
      mpi.send(data.data(), data.size(), 1, 1);
    } else {
      std::vector<std::byte> buf(bytes + 8, std::byte{0});
      const auto st = mpi.recv(buf.data(), buf.size(), 0, 1);
      EXPECT_EQ(st.bytes, bytes);
      EXPECT_TRUE(std::equal(data.begin(), data.end(), buf.begin()));
      checked = true;
    }
  });
  EXPECT_TRUE(checked);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MpiMessageSizes,
    ::testing::Combine(::testing::Values(Network::infiniband, Network::quadrics),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{100}, std::size_t{1024},
                                         std::size_t{1025}, std::size_t{2048},
                                         std::size_t{8192}, std::size_t{40000},
                                         std::size_t{100000},
                                         std::size_t{1000000})));

TEST_P(MpiSemantics, NonOvertakingSameSourceSameTag) {
  // 40 messages of mixed sizes (eager interleaved with rendezvous) must be
  // received in send order.
  core::Cluster cluster(cfg(2));
  cluster.run([&](mpi::Mpi& mpi) {
    constexpr int kCount = 40;
    if (mpi.rank() == 0) {
      for (int i = 0; i < kCount; ++i) {
        const std::size_t sz = (i % 3 == 0) ? 30000 : 64;  // mix protocols
        std::vector<std::byte> data(sz, std::byte{static_cast<unsigned char>(i)});
        mpi.send(data.data(), data.size(), 1, 4);
      }
    } else {
      std::vector<std::byte> buf(30000);
      for (int i = 0; i < kCount; ++i) {
        const auto st = mpi.recv(buf.data(), buf.size(), 0, 4);
        ASSERT_GT(st.bytes, 0u);
        EXPECT_EQ(static_cast<int>(buf[0]), i) << "message " << i << " overtaken";
      }
    }
  });
}

TEST_P(MpiSemantics, TagSelectionPicksAcrossArrivalOrder) {
  core::Cluster cluster(cfg(2));
  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      int a = 111, b = 222;
      mpi.send(&a, sizeof a, 1, 1);
      mpi.send(&b, sizeof b, 1, 2);
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      int x = 0, y = 0;
      mpi.recv(&x, sizeof x, 0, 2);
      mpi.recv(&y, sizeof y, 0, 1);
      EXPECT_EQ(x, 222);
      EXPECT_EQ(y, 111);
    }
  });
}

TEST_P(MpiSemantics, WildcardSourceAndTag) {
  core::Cluster cluster(cfg(3));
  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() != 0) {
      const int v = mpi.rank() * 10;
      mpi.send(&v, sizeof v, 0, mpi.rank());
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        const auto st = mpi.recv(&v, sizeof v, mpi::kAnySource, mpi::kAnyTag);
        EXPECT_EQ(v, st.source * 10);
        EXPECT_EQ(st.tag, st.source);
        sum += v;
      }
      EXPECT_EQ(sum, 30);
    }
  });
}

TEST_P(MpiSemantics, UnexpectedMessagesBufferUntilPosted) {
  core::Cluster cluster(cfg(2));
  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        std::vector<int> data(10, i);
        mpi.send(data.data(), data.size() * sizeof(int), 1, i);
      }
    } else {
      mpi.compute(sim::Time::sec(1e-3));  // let everything arrive unexpected
      for (int i = 4; i >= 0; --i) {  // post in reverse tag order
        std::vector<int> buf(10);
        mpi.recv(buf.data(), buf.size() * sizeof(int), 0, i);
        EXPECT_EQ(buf[0], i);
        EXPECT_EQ(buf[9], i);
      }
    }
  });
}

TEST_P(MpiSemantics, UnexpectedLargeMessage) {
  // Rendezvous/get path with the receive posted long after the RTS arrives.
  core::Cluster cluster(cfg(2));
  cluster.run([&](mpi::Mpi& mpi) {
    const std::size_t bytes = 500000;
    if (mpi.rank() == 0) {
      const auto data = pattern_bytes(bytes, 1);
      mpi.send(data.data(), bytes, 1, 8);
    } else {
      mpi.compute(sim::Time::sec(2e-3));
      std::vector<std::byte> buf(bytes);
      const auto st = mpi.recv(buf.data(), buf.size(), 0, 8);
      EXPECT_EQ(st.bytes, bytes);
      EXPECT_EQ(buf, pattern_bytes(bytes, 1));
    }
  });
}

TEST_P(MpiSemantics, IsendIrecvWaitall) {
  core::Cluster cluster(cfg(2));
  cluster.run([&](mpi::Mpi& mpi) {
    constexpr int kN = 16;
    std::vector<std::vector<int>> bufs(kN, std::vector<int>(100));
    std::vector<mpi::Request> reqs;
    if (mpi.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        std::fill(bufs[static_cast<std::size_t>(i)].begin(),
                  bufs[static_cast<std::size_t>(i)].end(), i);
        reqs.push_back(mpi.isend(bufs[static_cast<std::size_t>(i)].data(),
                                 100 * sizeof(int), 1, i));
      }
      mpi.waitall(reqs);
    } else {
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(mpi.irecv(bufs[static_cast<std::size_t>(i)].data(),
                                 100 * sizeof(int), 0, i));
      }
      mpi.waitall(reqs);
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(bufs[static_cast<std::size_t>(i)][50], i);
      }
    }
  });
}

TEST_P(MpiSemantics, TestReturnsFalseThenTrue) {
  core::Cluster cluster(cfg(2));
  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.compute(sim::Time::sec(1e-3));
      int v = 42;
      mpi.send(&v, sizeof v, 1, 0);
    } else {
      int v = 0;
      auto r = mpi.irecv(&v, sizeof v, 0, 0);
      EXPECT_FALSE(mpi.test(r));  // nothing sent yet
      while (!mpi.test(r)) mpi.compute(sim::Time::sec(50e-6));
      EXPECT_EQ(v, 42);
    }
  });
}

TEST_P(MpiSemantics, SendrecvExchanges) {
  core::Cluster cluster(cfg(2));
  cluster.run([&](mpi::Mpi& mpi) {
    const int peer = 1 - mpi.rank();
    int out = mpi.rank() + 100, in = -1;
    mpi.sendrecv(&out, sizeof out, peer, 3, &in, sizeof in, peer, 3);
    EXPECT_EQ(in, peer + 100);
  });
}

TEST_P(MpiSemantics, TruncationThrows) {
  core::Cluster cluster(cfg(2));
  EXPECT_THROW(
      cluster.run([&](mpi::Mpi& mpi) {
        if (mpi.rank() == 0) {
          std::vector<std::byte> big(256);
          mpi.send(big.data(), big.size(), 1, 0);
        } else {
          std::byte tiny[8];
          mpi.recv(tiny, sizeof tiny, 0, 0);
        }
      }),
      std::runtime_error);
}

TEST_P(MpiSemantics, DeadlockIsDetected) {
  core::Cluster cluster(cfg(2));
  EXPECT_THROW(cluster.run([&](mpi::Mpi& mpi) {
                 int v = 0;
                 mpi.recv(&v, sizeof v, 1 - mpi.rank(), 0);  // nobody sends
               }),
               std::runtime_error);
}

TEST_P(MpiSemantics, ManyToOneFanIn) {
  core::Cluster cluster(cfg(8));
  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      long sum = 0;
      for (int i = 1; i < mpi.size(); ++i) {
        long v = 0;
        mpi.recv(&v, sizeof v, mpi::kAnySource, 7);
        sum += v;
      }
      EXPECT_EQ(sum, 7L * 8 / 2);  // 1+2+...+7
    } else {
      const long v = mpi.rank();
      mpi.send(&v, sizeof v, 0, 7);
    }
  });
}

TEST_P(MpiSemantics, TwoPpnRanksShareNodes) {
  core::Cluster cluster(cfg(2, 2));  // 4 ranks on 2 nodes
  cluster.run([&](mpi::Mpi& mpi) {
    EXPECT_EQ(mpi.size(), 4);
    // Ring exchange crossing both intra-node and inter-node paths.
    const int right = (mpi.rank() + 1) % 4;
    const int left = (mpi.rank() + 3) % 4;
    int out = mpi.rank(), in = -1;
    mpi.sendrecv(&out, sizeof out, right, 1, &in, sizeof in, left, 1);
    EXPECT_EQ(in, left);
  });
}

TEST_P(MpiSemantics, SameNodeLargeMessage) {
  core::Cluster cluster(cfg(1, 2));
  cluster.run([&](mpi::Mpi& mpi) {
    const std::size_t bytes = 200000;
    if (mpi.rank() == 0) {
      const auto data = pattern_bytes(bytes, 2);
      mpi.send(data.data(), bytes, 1, 0);
    } else {
      std::vector<std::byte> buf(bytes);
      mpi.recv(buf.data(), buf.size(), 0, 0);
      EXPECT_EQ(buf, pattern_bytes(bytes, 2));
    }
  });
}

TEST_P(MpiSemantics, StreamOfEagerMessagesExceedsRingDepth) {
  // More back-to-back small sends than any credit window; flow control (IB)
  // and NIC buffering (Elan) must both survive it.
  core::Cluster cluster(cfg(2));
  cluster.run([&](mpi::Mpi& mpi) {
    constexpr int kCount = 300;
    if (mpi.rank() == 0) {
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < kCount; ++i) {
        reqs.push_back(mpi.isend(&i, sizeof i, 1, 2));
        // isend copies eagerly in our model, so reusing &i is benign here;
        // real codes would keep distinct buffers.
      }
      mpi.waitall(reqs);
    } else {
      mpi.compute(sim::Time::sec(1e-4));
      int expected = 0;
      for (int i = 0; i < kCount; ++i) {
        int v = -1;
        mpi.recv(&v, sizeof v, 0, 2);
        EXPECT_EQ(v, expected++);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Networks, MpiSemantics,
                         ::testing::Values(Network::infiniband,
                                           Network::quadrics,
                                           Network::myrinet),
                         [](const auto& info) {
                           return info.param == Network::infiniband ? "IB"
                                  : info.param == Network::quadrics ? "Elan4"
                                                                    : "Myri";
                         });

}  // namespace
}  // namespace icsim
