// Fat-tree topology: structure, routing correctness, and invariants checked
// exhaustively over all source/destination pairs for several tree shapes.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "net/topology.hpp"

namespace icsim::net {
namespace {

TEST(FatTree, CapacityAndSwitchCounts) {
  const FatTreeTopology quadrics(4, 3);  // QsNetII style: 4-ary 3-tree
  EXPECT_EQ(quadrics.capacity(), 64);
  EXPECT_EQ(quadrics.switches_per_level(), 16);
  EXPECT_EQ(quadrics.total_switches(), 48);

  const FatTreeTopology ib(12, 2);  // ISR 9600 style: 2-level of 24p chips
  EXPECT_EQ(ib.capacity(), 144);
  EXPECT_EQ(ib.switches_per_level(), 12);
}

TEST(FatTree, RejectsBadParameters) {
  EXPECT_THROW(FatTreeTopology(1, 3), std::invalid_argument);
  EXPECT_THROW(FatTreeTopology(4, 0), std::invalid_argument);
  EXPECT_THROW(FatTreeTopology(1024, 4), std::invalid_argument);
}

TEST(FatTree, LeafAttachment) {
  const FatTreeTopology t(4, 3);
  EXPECT_EQ(t.leaf_switch_of(0).word, 0u);
  EXPECT_EQ(t.leaf_switch_of(3).word, 0u);
  EXPECT_EQ(t.leaf_switch_of(4).word, 1u);
  EXPECT_EQ(t.leaf_switch_of(63).word, 15u);
  EXPECT_EQ(t.leaf_switch_of(63).level, 0);
}

TEST(FatTree, AncestorLevelSameLeaf) {
  const FatTreeTopology t(4, 3);
  EXPECT_EQ(t.ancestor_level(0, 1), 0);   // same leaf switch
  EXPECT_EQ(t.ancestor_level(0, 4), 1);   // adjacent leaf, same l1 subtree
  EXPECT_EQ(t.ancestor_level(0, 63), 2);  // opposite corners, full climb
}

TEST(FatTree, RouteSameLeafIsTwoHops) {
  const FatTreeTopology t(4, 3);
  const auto r = t.route(0, 1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].kind, Hop::Kind::node_to_switch);
  EXPECT_EQ(r[1].kind, Hop::Kind::switch_to_node);
  EXPECT_EQ(r[0].to, t.leaf_switch_of(0));
}

TEST(FatTree, RouteSelfThrows) {
  const FatTreeTopology t(4, 3);
  EXPECT_THROW(t.route(5, 5), std::invalid_argument);
}

// Route validity over all pairs: starts at src, ends at dst, climbs then
// descends, uses only valid adjacencies, and has the predicted length.
class FatTreeAllPairs : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FatTreeAllPairs, RoutesAreValidEverywhere) {
  const auto [k, n] = GetParam();
  const FatTreeTopology t(k, n);
  const int cap = t.capacity();
  for (int s = 0; s < cap; ++s) {
    for (int d = 0; d < cap; ++d) {
      if (s == d) continue;
      const auto r = t.route(s, d);
      const int m = t.ancestor_level(s, d);
      ASSERT_EQ(static_cast<int>(r.size()), 2 * m + 2) << s << "->" << d;
      ASSERT_EQ(r.front().kind, Hop::Kind::node_to_switch);
      ASSERT_EQ(r.front().node, s);
      ASSERT_EQ(r.front().to, t.leaf_switch_of(s));
      ASSERT_EQ(r.back().kind, Hop::Kind::switch_to_node);
      ASSERT_EQ(r.back().node, d);
      ASSERT_EQ(r.back().from, t.leaf_switch_of(d));
      // Contiguity and the up-then-down profile.
      int prev_level = 0;
      bool descending = false;
      for (std::size_t i = 1; i + 1 < r.size(); ++i) {
        ASSERT_EQ(r[i].kind, Hop::Kind::switch_to_switch);
        ASSERT_EQ(r[i].from, (i == 1 ? r.front().to : r[i - 1].to));
        const int dl = r[i].to.level - r[i].from.level;
        ASSERT_TRUE(dl == 1 || dl == -1);
        if (dl == -1) descending = true;
        if (descending) {
          ASSERT_EQ(dl, -1) << "route climbed after descending";
        }
        prev_level = r[i].to.level;
      }
      (void)prev_level;
    }
  }
}

TEST_P(FatTreeAllPairs, SwitchHopCountMatchesRoute) {
  const auto [k, n] = GetParam();
  const FatTreeTopology t(k, n);
  for (int s = 0; s < t.capacity(); s += 3) {
    for (int d = 0; d < t.capacity(); d += 5) {
      if (s == d) continue;
      EXPECT_EQ(t.switch_hops(s, d), static_cast<int>(t.route(s, d).size()) - 2);
    }
  }
}

TEST_P(FatTreeAllPairs, RoutesNeverRevisitASwitch) {
  const auto [k, n] = GetParam();
  const FatTreeTopology t(k, n);
  for (int s = 0; s < t.capacity(); s += 2) {
    for (int d = 0; d < t.capacity(); d += 3) {
      if (s == d) continue;
      std::set<std::uint64_t> seen;
      for (const auto& hop : t.route(s, d)) {
        if (hop.kind == Hop::Kind::switch_to_node) continue;
        const auto id = t.switch_id(hop.to);
        ASSERT_TRUE(seen.insert(id).second) << "switch revisited";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FatTreeAllPairs,
                         ::testing::Values(std::make_tuple(2, 2),
                                           std::make_tuple(2, 4),
                                           std::make_tuple(4, 3),
                                           std::make_tuple(12, 2),
                                           std::make_tuple(3, 3)));

// ------------------------------------------------- degraded-fabric routing

// Shared validity check for fault-avoiding routes: correct endpoints, valid
// adjacencies, and the up-then-down profile (deadlock freedom).
void expect_valid_route(const FatTreeTopology& t, const std::vector<Hop>& r,
                        int s, int d) {
  ASSERT_GE(r.size(), 2u);
  ASSERT_EQ(r.front().kind, Hop::Kind::node_to_switch);
  ASSERT_EQ(r.front().node, s);
  ASSERT_EQ(r.front().to, t.leaf_switch_of(s));
  ASSERT_EQ(r.back().kind, Hop::Kind::switch_to_node);
  ASSERT_EQ(r.back().node, d);
  ASSERT_EQ(r.back().from, t.leaf_switch_of(d));
  bool descending = false;
  for (std::size_t i = 1; i + 1 < r.size(); ++i) {
    ASSERT_EQ(r[i].kind, Hop::Kind::switch_to_switch);
    ASSERT_EQ(r[i].from, (i == 1 ? r.front().to : r[i - 1].to));
    ASSERT_TRUE(t.adjacent(r[i].from, r[i].to));
    const int dl = r[i].to.level - r[i].from.level;
    ASSERT_TRUE(dl == 1 || dl == -1);
    if (dl == -1) descending = true;
    if (descending) {
      ASSERT_EQ(dl, -1) << "route climbed after descending";
    }
  }
}

TEST(FatTreeFaults, NoDownedLinksReturnsTheDefaultRoute) {
  const FatTreeTopology t(4, 3);
  const auto never = [](const Hop&) { return false; };
  for (int s = 0; s < t.capacity(); s += 7) {
    for (int d = 0; d < t.capacity(); d += 5) {
      if (s == d) continue;
      const auto def = t.route(s, d);
      const auto alt = t.route_avoiding(s, d, never);
      ASSERT_EQ(alt.size(), def.size());
      for (std::size_t i = 0; i < def.size(); ++i) {
        EXPECT_EQ(alt[i].from, def[i].from);
        EXPECT_EQ(alt[i].to, def[i].to);
      }
    }
  }
}

TEST(FatTreeFaults, AvoidsEachSpineLinkOfTheDefaultRoute) {
  // Knock out every switch-to-switch cable of the default route, one at a
  // time; the alternate must avoid it (both directions), stay valid, and
  // keep the minimal length.
  for (const auto& [k, n] : {std::make_tuple(4, 3), std::make_tuple(2, 4)}) {
    const FatTreeTopology t(k, n);
    const int s = 0, d = t.capacity() - 1;  // full climb
    const auto def = t.route(s, d);
    for (const auto& dead : def) {
      if (dead.kind != Hop::Kind::switch_to_switch) continue;
      const auto down = [&dead](const Hop& h) {
        return h.kind == Hop::Kind::switch_to_switch &&
               ((h.from == dead.from && h.to == dead.to) ||
                (h.from == dead.to && h.to == dead.from));
      };
      const auto alt = t.route_avoiding(s, d, down);
      ASSERT_FALSE(alt.empty());
      expect_valid_route(t, alt, s, d);
      EXPECT_EQ(alt.size(), def.size());  // still minimal
      for (const auto& h : alt) EXPECT_FALSE(down(h));
    }
  }
}

TEST(FatTreeFaults, DownedEndpointHasNoRoute) {
  const FatTreeTopology t(4, 3);
  const auto down = [](const Hop& h) {
    return h.kind != Hop::Kind::switch_to_switch && h.node == 9;
  };
  EXPECT_TRUE(t.route_avoiding(0, 9, down).empty());
  EXPECT_TRUE(t.route_avoiding(9, 0, down).empty());
  // Unrelated pairs are unaffected.
  EXPECT_FALSE(t.route_avoiding(0, 25, down).empty());
}

TEST(FatTreeFaults, IsolatedLeafSwitchPartitionsItsSubtree) {
  const FatTreeTopology t(2, 3);
  const SwitchCoord leaf = t.leaf_switch_of(0);
  const auto down = [&](const Hop& h) {
    return h.kind == Hop::Kind::switch_to_switch &&
           (h.from == leaf || h.to == leaf);
  };
  // Cross-subtree: every route needs one of the leaf's up-cables -> none.
  EXPECT_TRUE(t.route_avoiding(0, t.capacity() - 1, down).empty());
  // Same leaf switch: no switch-to-switch hop involved, still routable.
  EXPECT_FALSE(t.route_avoiding(0, 1, down).empty());
}

TEST(FatTreeFaults, SingleSpineOutageNeverPartitionsTheFabric) {
  // One dead spine cable: every pair must still have a valid route (the
  // k^m climb alternatives guarantee it for m >= 1).
  const FatTreeTopology t(2, 3);
  const auto def = t.route(0, t.capacity() - 1);
  Hop dead{};
  for (const auto& h : def) {
    if (h.kind == Hop::Kind::switch_to_switch &&
        h.to.level == t.levels() - 1) {
      dead = h;
    }
  }
  ASSERT_EQ(dead.kind, Hop::Kind::switch_to_switch);
  const auto down = [&dead](const Hop& h) {
    return h.kind == Hop::Kind::switch_to_switch &&
           ((h.from == dead.from && h.to == dead.to) ||
            (h.from == dead.to && h.to == dead.from));
  };
  for (int s = 0; s < t.capacity(); ++s) {
    for (int d = 0; d < t.capacity(); ++d) {
      if (s == d) continue;
      const auto r = t.route_avoiding(s, d, down);
      ASSERT_FALSE(r.empty()) << s << "->" << d;
      expect_valid_route(t, r, s, d);
      for (const auto& h : r) ASSERT_FALSE(down(h));
    }
  }
}

TEST(FatTreeFaults, Adjacency) {
  const FatTreeTopology t(4, 3);
  // Up-neighbours of leaf word 0 at level 1: words agreeing except digit 0.
  EXPECT_TRUE(t.adjacent({0, 0}, {1, 0}));
  EXPECT_TRUE(t.adjacent({1, 0}, {0, 0}));  // symmetric
  EXPECT_TRUE(t.adjacent({0, 0}, {1, 1}));
  EXPECT_TRUE(t.adjacent({0, 0}, {1, 3}));
  EXPECT_FALSE(t.adjacent({0, 0}, {1, 4}));   // differ in digit 1
  EXPECT_FALSE(t.adjacent({0, 0}, {0, 1}));   // same level
  EXPECT_FALSE(t.adjacent({0, 0}, {2, 0}));   // two levels apart
  EXPECT_FALSE(t.adjacent({0, 0}, {3, 0}));   // out of range
  EXPECT_FALSE(t.adjacent({1, 0}, {2, 1}));   // differ in digit 0 (not 1)
  EXPECT_TRUE(t.adjacent({1, 0}, {2, 4}));    // differ only in digit 1
}

// D-mod-k up-routing: traffic to distinct destinations from one source
// spreads over distinct top-level switches.
TEST(FatTree, DestinationRoutingSpreadsSpineLoad) {
  const FatTreeTopology t(4, 3);
  std::set<std::uint64_t> spines;
  for (int d = 16; d < 32; ++d) {  // destinations in another subtree
    for (const auto& hop : t.route(0, d)) {
      if (hop.kind == Hop::Kind::switch_to_switch && hop.to.level == 2) {
        spines.insert(t.switch_id(hop.to));
      }
    }
  }
  // 16 destinations spread over more than one spine switch.
  EXPECT_GT(spines.size(), 3u);
}

}  // namespace
}  // namespace icsim::net
