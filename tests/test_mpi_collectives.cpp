// Collective operations: correctness against serial references over both
// transports, several rank counts and payload sizes (parameterized).

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/cluster.hpp"

namespace icsim {
namespace {

using core::ClusterConfig;
using core::Network;

class Collectives
    : public ::testing::TestWithParam<std::tuple<Network, int>> {
 protected:
  [[nodiscard]] core::Cluster make_cluster() const {
    const auto [net, ranks] = GetParam();
    return core::Cluster(net == Network::infiniband
                             ? core::ib_cluster(ranks, 1)
                             : core::elan_cluster(ranks, 1));
  }
};

TEST_P(Collectives, BarrierCompletes) {
  auto cluster = make_cluster();
  int through = 0;
  cluster.run([&](mpi::Mpi& mpi) {
    for (int i = 0; i < 3; ++i) mpi.barrier();
    ++through;
  });
  EXPECT_EQ(through, cluster.ranks());
}

TEST_P(Collectives, BarrierSynchronizes) {
  auto cluster = make_cluster();
  if (cluster.ranks() < 2) return;
  cluster.run([&](mpi::Mpi& mpi) {
    // Rank 0 computes long before the barrier; everyone must leave the
    // barrier no earlier than rank 0's arrival.
    if (mpi.rank() == 0) mpi.compute(sim::Time::sec(5e-3));
    mpi.barrier();
    EXPECT_GE(mpi.wtime(), 5e-3);
  });
}

TEST_P(Collectives, BcastFromEveryRoot) {
  auto cluster = make_cluster();
  cluster.run([&](mpi::Mpi& mpi) {
    for (int root = 0; root < mpi.size(); ++root) {
      std::vector<int> data(64, mpi.rank() == root ? root + 100 : -1);
      mpi.bcast(data.data(), data.size(), root);
      EXPECT_EQ(data[0], root + 100);
      EXPECT_EQ(data[63], root + 100);
    }
  });
}

TEST_P(Collectives, AllreduceSum) {
  auto cluster = make_cluster();
  const int n = cluster.ranks();
  cluster.run([&](mpi::Mpi& mpi) {
    const double v = mpi.rank() + 1.0;
    EXPECT_DOUBLE_EQ(mpi.allreduce(v, mpi::ReduceOp::sum),
                     n * (n + 1) / 2.0);
  });
}

TEST_P(Collectives, AllreduceMinMax) {
  auto cluster = make_cluster();
  const int n = cluster.ranks();
  cluster.run([&](mpi::Mpi& mpi) {
    const double v = static_cast<double>(mpi.rank());
    EXPECT_DOUBLE_EQ(mpi.allreduce(v, mpi::ReduceOp::max), n - 1.0);
    EXPECT_DOUBLE_EQ(mpi.allreduce(v, mpi::ReduceOp::min), 0.0);
  });
}

TEST_P(Collectives, AllreduceVector) {
  auto cluster = make_cluster();
  const int n = cluster.ranks();
  cluster.run([&](mpi::Mpi& mpi) {
    std::vector<long> in(100), out(100);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<long>(i) * (mpi.rank() + 1);
    }
    mpi.allreduce(in.data(), out.data(), in.size(), mpi::ReduceOp::sum);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<long>(i) * n * (n + 1) / 2);
    }
  });
}

TEST_P(Collectives, ReduceToNonzeroRoot) {
  auto cluster = make_cluster();
  if (cluster.ranks() < 2) return;
  const int n = cluster.ranks();
  cluster.run([&](mpi::Mpi& mpi) {
    const int root = n - 1;
    double in = 2.0, out = 0.0;
    mpi.reduce(&in, &out, 1, mpi::ReduceOp::prod, root);
    if (mpi.rank() == root) {
      EXPECT_DOUBLE_EQ(out, std::pow(2.0, n));
    }
  });
}

TEST_P(Collectives, AllgatherCollectsInRankOrder) {
  auto cluster = make_cluster();
  const int n = cluster.ranks();
  cluster.run([&](mpi::Mpi& mpi) {
    std::array<int, 3> mine = {mpi.rank(), mpi.rank() * 10, mpi.rank() * 100};
    std::vector<int> all(static_cast<std::size_t>(3 * n));
    mpi.allgather(mine.data(), 3, all.data());
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(3 * r)], r);
      EXPECT_EQ(all[static_cast<std::size_t>(3 * r + 2)], r * 100);
    }
  });
}

TEST_P(Collectives, AlltoallTransposes) {
  auto cluster = make_cluster();
  const int n = cluster.ranks();
  cluster.run([&](mpi::Mpi& mpi) {
    std::vector<int> out(static_cast<std::size_t>(n)), in(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      out[static_cast<std::size_t>(d)] = mpi.rank() * 1000 + d;
    }
    mpi.alltoall(out.data(), 1, in.data());
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(in[static_cast<std::size_t>(s)], s * 1000 + mpi.rank());
    }
  });
}

TEST_P(Collectives, GatherToRoot) {
  auto cluster = make_cluster();
  const int n = cluster.ranks();
  cluster.run([&](mpi::Mpi& mpi) {
    const double mine = mpi.rank() * 2.5;
    std::vector<double> all(static_cast<std::size_t>(n), -1.0);
    mpi.gather(&mine, 1, all.data(), 0);
    if (mpi.rank() == 0) {
      for (int r = 0; r < n; ++r) {
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r * 2.5);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    NetworksAndSizes, Collectives,
    ::testing::Combine(::testing::Values(Network::infiniband,
                                         Network::quadrics),
                       ::testing::Values(1, 2, 3, 4, 7, 8, 16)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == Network::infiniband
                             ? "IB"
                             : "Elan4") +
             "_" + std::to_string(std::get<1>(info.param)) + "ranks";
    });

}  // namespace
}  // namespace icsim
