// Fiber semantics: resume/yield control transfer, blocking helpers, and
// interaction with the event engine.

#include <gtest/gtest.h>

#include <vector>

#include "sim/blocking.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"

namespace icsim::sim {
namespace {

TEST(Fiber, RunsToCompletionOnResume) {
  bool ran = false;
  Fiber f([&] { ran = true; });
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  std::vector<int> order;
  Fiber f([&] {
    order.push_back(1);
    Fiber::yield();
    order.push_back(3);
  });
  f.resume();
  order.push_back(2);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, CurrentTracksExecutingFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, NestedResume) {
  std::vector<int> order;
  Fiber inner([&] {
    order.push_back(2);
    Fiber::yield();
    order.push_back(4);
  });
  Fiber outer([&] {
    order.push_back(1);
    inner.resume();  // runs inner until its yield, then returns here
    order.push_back(3);
    inner.resume();
    order.push_back(5);
  });
  outer.resume();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(outer.finished());
  EXPECT_TRUE(inner.finished());
}

TEST(Fiber, ManyFibersInterleave) {
  constexpr int kFibers = 64;
  std::vector<std::unique_ptr<Fiber>> fibers;
  int alive = 0;
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&alive] {
      ++alive;
      Fiber::yield();
      --alive;
    }));
  }
  for (auto& f : fibers) f->resume();
  EXPECT_EQ(alive, kFibers);
  for (auto& f : fibers) f->resume();
  EXPECT_EQ(alive, 0);
}

TEST(Fiber, DeepStackUsageWorks) {
  // Recursion that needs a good chunk of the 256 KB default stack.
  bool done = false;
  Fiber f([&] {
    struct R {
      static int go(int depth) {
        char pad[1024];
        pad[0] = static_cast<char>(depth);
        if (depth == 0) return pad[0];
        return go(depth - 1) + (pad[0] != 0 ? 1 : 0);
      }
    };
    (void)R::go(150);
    done = true;
  });
  f.resume();
  EXPECT_TRUE(done);
}

TEST(Blocking, SleepForAdvancesSimTime) {
  Engine e;
  Time woke = Time::zero();
  Fiber f([&] {
    sleep_for(e, Time::us(7));
    woke = e.now();
  });
  f.resume();
  e.run();
  EXPECT_EQ(woke, Time::us(7));
  EXPECT_TRUE(f.finished());
}

TEST(Blocking, SleepUntilPastInstantReturnsImmediately) {
  Engine e;
  e.schedule_at(Time::us(5), [] {});
  e.run();
  bool done = false;
  Fiber f([&] {
    sleep_until(e, Time::us(3));  // already past
    done = true;
  });
  f.resume();
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now(), Time::us(5));
}

TEST(Blocking, SleepersWakeInTimeOrder) {
  Engine e;
  std::vector<int> order;
  Fiber a([&] {
    sleep_for(e, Time::us(2));
    order.push_back(2);
  });
  Fiber b([&] {
    sleep_for(e, Time::us(1));
    order.push_back(1);
  });
  a.resume();
  b.resume();
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Trigger, WaitBlocksUntilFire) {
  Engine e;
  Trigger t(e);
  std::vector<int> order;
  Fiber f([&] {
    order.push_back(1);
    t.wait();
    order.push_back(3);
  });
  f.resume();
  order.push_back(2);
  e.schedule_at(Time::us(4), [&] { t.fire(); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(t.fired());
}

TEST(Trigger, WaitAfterFireReturnsImmediately) {
  Engine e;
  Trigger t(e);
  t.fire();
  bool done = false;
  Fiber f([&] {
    t.wait();
    done = true;
  });
  f.resume();
  EXPECT_TRUE(done);
}

TEST(Trigger, MultipleWaitersAllWake) {
  Engine e;
  Trigger t(e);
  int woke = 0;
  std::vector<std::unique_ptr<Fiber>> fs;
  for (int i = 0; i < 5; ++i) {
    fs.push_back(std::make_unique<Fiber>([&] {
      t.wait();
      ++woke;
    }));
    fs.back()->resume();
  }
  t.fire();
  e.run();
  EXPECT_EQ(woke, 5);
}

}  // namespace
}  // namespace icsim::sim
