// Extension kernels: NPB EP (exact verification), NPB IS (sortedness and
// conservation), and the multigrid solver (contraction + invariance).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/mg/mg.hpp"
#include "apps/npb/ep.hpp"
#include "apps/npb/is.hpp"
#include "core/cluster.hpp"

namespace icsim::apps {
namespace {

template <typename Result, typename Fn>
Result run_on(const core::ClusterConfig& cc, Fn&& fn) {
  core::Cluster cluster(cc);
  Result result{};
  cluster.run([&](mpi::Mpi& mpi) {
    Result r = fn(mpi);
    if (mpi.rank() == 0) result = r;
  });
  return result;
}

// ------------------------------------------------------------------- EP

TEST(Ep, ClassSVerifiesAgainstNpbSums) {
  npb::EpConfig cfg;
  cfg.cls = npb::ep_class_S();
  const auto r = run_on<npb::EpResult>(
      core::elan_cluster(4), [&](mpi::Mpi& m) { return npb::run_ep(m, cfg); });
  EXPECT_TRUE(r.verified);
  EXPECT_NEAR(r.sx, cfg.cls.ref_sx, 1e-6);
  EXPECT_NEAR(r.sy, cfg.cls.ref_sy, 1e-6);
  EXPECT_GT(r.gaussians, 13'000'000u);  // ~pi/4 acceptance of 2^24 pairs
  EXPECT_LT(r.gaussians, 13'400'000u);
}

TEST(Ep, ResultIndependentOfProcessCount) {
  npb::EpConfig cfg;
  cfg.cls = npb::ep_class_S();
  const auto r1 = run_on<npb::EpResult>(
      core::elan_cluster(1), [&](mpi::Mpi& m) { return npb::run_ep(m, cfg); });
  const auto r8 = run_on<npb::EpResult>(
      core::ib_cluster(8), [&](mpi::Mpi& m) { return npb::run_ep(m, cfg); });
  EXPECT_NEAR(r1.sx, r8.sx, 1e-9 * std::abs(r1.sx));
  EXPECT_EQ(r1.counts, r8.counts);
}

TEST(Ep, ScalesNearlyPerfectly) {
  // EP barely communicates: efficiency at 8 ranks should be ~100% on both
  // networks — the opposite end of the spectrum from CG.
  npb::EpConfig cfg;
  cfg.cls = npb::ep_class_S();
  const auto r1 = run_on<npb::EpResult>(
      core::ib_cluster(1), [&](mpi::Mpi& m) { return npb::run_ep(m, cfg); });
  const auto r8 = run_on<npb::EpResult>(
      core::ib_cluster(8), [&](mpi::Mpi& m) { return npb::run_ep(m, cfg); });
  const double eff = r1.seconds / (8.0 * r8.seconds);
  EXPECT_GT(eff, 0.97);
}

// ------------------------------------------------------------------- IS

TEST(Is, SortsAndConserves) {
  npb::IsConfig cfg;
  cfg.cls = npb::is_class_S();
  for (const int ranks : {1, 4, 8}) {
    const auto r = run_on<npb::IsResult>(
        core::elan_cluster(ranks),
        [&](mpi::Mpi& m) { return npb::run_is(m, cfg); });
    EXPECT_TRUE(r.sorted) << ranks;
    EXPECT_TRUE(r.conserved) << ranks;
    EXPECT_EQ(r.keys_total, 1ull << 16);
  }
}

TEST(Is, TransportInvariant) {
  npb::IsConfig cfg;
  cfg.cls = npb::is_class_S();
  const auto ib = run_on<npb::IsResult>(
      core::ib_cluster(4), [&](mpi::Mpi& m) { return npb::run_is(m, cfg); });
  const auto el = run_on<npb::IsResult>(
      core::elan_cluster(4), [&](mpi::Mpi& m) { return npb::run_is(m, cfg); });
  EXPECT_TRUE(ib.sorted && el.sorted);
  EXPECT_EQ(ib.comm_bytes, el.comm_bytes);  // same data moved
  EXPECT_NE(ib.seconds, el.seconds);        // different clocks
}

TEST(Is, MovesBulkData) {
  npb::IsConfig cfg;
  cfg.cls = npb::is_class_W();
  const auto r = run_on<npb::IsResult>(
      core::ib_cluster(8), [&](mpi::Mpi& m) { return npb::run_is(m, cfg); });
  EXPECT_GT(r.comm_bytes, 10'000'000u);  // the alltoallv is bandwidth-bound
}

// ------------------------------------------------------------------- MG

TEST(Mg, VcyclesContractTheResidual) {
  mg::MgConfig cfg;
  cfg.n = 32;
  cfg.vcycles = 4;
  const auto r = run_on<mg::MgResult>(
      core::elan_cluster(1), [&](mpi::Mpi& m) { return mg::run_mg(m, cfg); });
  EXPECT_GT(r.levels, 3);
  EXPECT_LT(r.rnorm, r.rnorm0 * 0.05);  // solid contraction over 4 cycles
}

TEST(Mg, DecompositionInvariance) {
  // Identical hierarchies (capped depth) must give identical numerics.
  mg::MgConfig cfg;
  cfg.n = 32;
  cfg.vcycles = 2;
  cfg.max_levels = 4;  // both decompositions support 4 levels
  const auto r1 = run_on<mg::MgResult>(
      core::elan_cluster(1), [&](mpi::Mpi& m) { return mg::run_mg(m, cfg); });
  const auto r8 = run_on<mg::MgResult>(
      core::elan_cluster(8), [&](mpi::Mpi& m) { return mg::run_mg(m, cfg); });
  EXPECT_EQ(r1.levels, r8.levels);
  EXPECT_NEAR(r8.rnorm, r1.rnorm, 1e-10 * r1.rnorm);
  EXPECT_NEAR(r8.rnorm0, r1.rnorm0, 1e-10 * r1.rnorm0);
}

TEST(Mg, TransportInvariance) {
  mg::MgConfig cfg;
  cfg.n = 32;
  cfg.vcycles = 2;
  const auto ib = run_on<mg::MgResult>(
      core::ib_cluster(4), [&](mpi::Mpi& m) { return mg::run_mg(m, cfg); });
  const auto el = run_on<mg::MgResult>(
      core::elan_cluster(4), [&](mpi::Mpi& m) { return mg::run_mg(m, cfg); });
  EXPECT_DOUBLE_EQ(ib.rnorm, el.rnorm);
}

TEST(Mg, MoreRanksShallowerHierarchy) {
  mg::MgConfig cfg;
  cfg.n = 32;
  const auto r1 = run_on<mg::MgResult>(
      core::elan_cluster(1), [&](mpi::Mpi& m) { return mg::run_mg(m, cfg); });
  const auto r8 = run_on<mg::MgResult>(
      core::elan_cluster(8), [&](mpi::Mpi& m) { return mg::run_mg(m, cfg); });
  EXPECT_GE(r1.levels, r8.levels);  // coarsening stops at min_local per rank
  EXPECT_GT(r8.halo_bytes, 0u);
}

TEST(Mg, RejectsNonPowerOfTwo) {
  mg::MgConfig cfg;
  cfg.n = 24;
  core::Cluster cluster(core::elan_cluster(1));
  EXPECT_THROW(cluster.run([&](mpi::Mpi& m) { mg::run_mg(m, cfg); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace icsim::apps
