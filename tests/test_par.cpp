// Tests for the conservative parallel engine (src/par/): partitioning
// invariants, the thread-count-invariant digest contract, the lookahead
// audit, sharded-fabric timing parity with net::Fabric, collective shape
// sanity, and the nested-parallelism guard.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cluster.hpp"
#include "fault/plan.hpp"
#include "net/fabric.hpp"
#include "par/collective.hpp"
#include "par/par_cluster.hpp"
#include "par/par_engine.hpp"
#include "par/partition.hpp"
#include "par/sharded_fabric.hpp"
#include "sim/check.hpp"
#include "sim/concurrency.hpp"

namespace icsim {
namespace {

class ScopedCheck {
 public:
  explicit ScopedCheck(bool on) : was_(sim::check::enabled()) {
    sim::check::set_enabled(on);
  }
  ~ScopedCheck() { sim::check::set_enabled(was_); }

 private:
  bool was_;
};

/// External-pool guard: tests must not leak a fake sweep width.
class ScopedExternalWorkers {
 public:
  explicit ScopedExternalWorkers(int w) { sim::set_external_workers(w); }
  ~ScopedExternalWorkers() { sim::set_external_workers(1); }
};

TEST(Partitioning, NodesAlignWithTheirLeafSwitches) {
  const net::FatTreeTopology topo(4, 3);  // 64 endpoints, 16 leaves
  const par::Partitioning p = par::make_partitioning(topo, 64, 8);
  EXPECT_EQ(p.parts, 8);
  for (int n = 0; n < 64; ++n) {
    // The endpoint hops of every route must be partition-internal: a node
    // lives with its leaf switch.
    EXPECT_EQ(p.of_node(n), p.of_switch(topo.leaf_switch_of(n)));
  }
  // Contiguous slices: partition index is monotone in node id.
  for (int n = 1; n < 64; ++n) {
    EXPECT_LE(p.of_node(n - 1), p.of_node(n));
  }
}

TEST(Partitioning, EndpointHopsNeverCrossPartitions) {
  const net::FatTreeTopology topo(4, 3);
  const par::Partitioning p = par::make_partitioning(topo, 64, 4);
  for (int src = 0; src < 64; src += 7) {
    for (int dst = 0; dst < 64; dst += 11) {
      if (src == dst) continue;
      const std::vector<net::Hop> route = topo.route(src, dst);
      // First hop owned by src's partition, last by dst's.
      EXPECT_EQ(p.owner(route.front()), p.of_node(src));
      EXPECT_EQ(p.owner(route.back()), p.of_node(dst));
    }
  }
}

TEST(Partitioning, ClampsToPopulatedLeaves) {
  const net::FatTreeTopology topo(4, 3);
  // 6 nodes occupy 2 leaf switches: cannot slice thinner than one leaf.
  const par::Partitioning p = par::make_partitioning(topo, 6, 8);
  EXPECT_EQ(p.parts, 2);
}

TEST(ParEngine, RejectsNonPositiveLookahead) {
  par::ParConfig pc;
  pc.partitions = 2;
  pc.lookahead = sim::Time::zero();
  EXPECT_THROW(par::ParEngine{pc}, std::invalid_argument);
}

TEST(ParEngine, SingleShardRunsLikeAnEngine) {
  par::ParConfig pc;
  pc.partitions = 1;
  pc.lookahead = sim::Time::ns(100);
  par::ParEngine pe(pc);
  std::vector<int> order;
  pe.shard(0).post_at(sim::Time::us(2), [&] { order.push_back(2); });
  pe.shard(0).post_at(sim::Time::us(1), [&] { order.push_back(1); });
  pe.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(pe.events_processed(), 2u);
  EXPECT_GE(pe.windows(), 1u);
}

TEST(ParEngine, CrossPostsDeliverInCanonicalOrder) {
  // Two source shards post into shard 2 at the same timestamp; delivery
  // order must be (t, src, seq) regardless of scheduling.
  par::ParConfig pc;
  pc.partitions = 3;
  pc.threads = 3;
  pc.lookahead = sim::Time::us(1);
  par::ParEngine pe(pc);
  std::vector<int> order;
  const sim::Time t = sim::Time::us(5);
  pe.shard(0).post_at(sim::Time::zero(), [&] {
    pe.post_cross(0, 2, t, [&] { order.push_back(0); });
  });
  pe.shard(1).post_at(sim::Time::zero(), [&] {
    pe.post_cross(1, 2, t, [&] { order.push_back(10); });
    pe.post_cross(1, 2, t, [&] { order.push_back(11); });
  });
  pe.run();
  EXPECT_EQ(order, (std::vector<int>{0, 10, 11}));
  EXPECT_EQ(pe.cross_posts(), 3u);
}

/// Run one par point and return its digest (auditor armed throughout).
std::uint64_t par_digest(core::Network net, int nodes, int threads,
                         par::Collective op, const fault::FaultPlan& faults) {
  ScopedCheck armed(true);
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(nodes)
                               : core::elan_cluster(nodes);
  cc.env_overrides = false;  // the test matrix must not see ICSIM_PAR_THREADS
  cc.intra_run_threads = threads;
  cc.faults = faults;
  par::ParCluster cluster(cc);
  par::CollectiveSpec spec;
  spec.op = op;
  spec.bytes = 8;
  spec.iterations = 2;
  const par::ParRunStats st = cluster.run(spec);
  EXPECT_EQ(st.threads_used, threads <= st.partitions ? threads : st.partitions);
  return st.event_digest;
}

TEST(ParDeterminism, DigestMatrixThreadCountInvariance) {
  // The tentpole contract: -j1 == -j8, byte-identical, on both fabrics.
  const fault::FaultPlan clean;
  for (const core::Network net :
       {core::Network::infiniband, core::Network::quadrics}) {
    for (const par::Collective op :
         {par::Collective::barrier, par::Collective::allreduce}) {
      const std::uint64_t base = par_digest(net, 64, 1, op, clean);
      for (const int threads : {2, 4, 8}) {
        EXPECT_EQ(par_digest(net, 64, threads, op, clean), base)
            << "threads=" << threads << " op=" << par::to_string(op);
      }
    }
  }
}

TEST(ParDeterminism, DigestInvarianceUnderFaultOverlay) {
  // One fault-overlay point of the matrix: a spine cable down for the whole
  // run forces reroutes, whose alternate climbs must also respect the
  // partition lookahead and stay thread-count invariant.
  fault::FaultPlan plan;
  fault::LinkDownWindow w;
  w.link = fault::LinkRef::between(net::SwitchCoord{0, 0},
                                   net::SwitchCoord{1, 1});
  w.down = sim::Time::zero();
  w.up = sim::Time::zero();  // up <= down: down forever
  plan.link_windows.push_back(w);
  const std::uint64_t base = par_digest(core::Network::quadrics, 64, 1,
                                        par::Collective::allreduce, plan);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(par_digest(core::Network::quadrics, 64, threads,
                         par::Collective::allreduce, plan),
              base);
  }
}

TEST(ParFaults, WholeRunLinkDownReroutesAndCompletes) {
  ScopedCheck armed(true);
  core::ClusterConfig cc = core::elan_cluster(64);
  cc.env_overrides = false;
  cc.intra_run_threads = 2;
  fault::LinkDownWindow w;
  w.link = fault::LinkRef::between(net::SwitchCoord{0, 0},
                                   net::SwitchCoord{1, 1});
  w.down = sim::Time::zero();
  w.up = sim::Time::zero();
  cc.faults.link_windows.push_back(w);
  par::ParCluster cluster(cc);
  const par::ParRunStats st =
      cluster.run(par::CollectiveSpec{par::Collective::barrier, 8, 2});
  EXPECT_GT(st.chunks_rerouted, 0u);
  EXPECT_EQ(st.chunks_dropped_link_down, 0u);  // reroute found a clean climb
}

TEST(ParCluster, RejectsUnsupportedFaultPlans) {
  core::ClusterConfig cc = core::elan_cluster(16);
  cc.env_overrides = false;
  cc.faults.ber = 1e-7;
  EXPECT_THROW(par::ParCluster{cc}, std::invalid_argument);
}

TEST(ParCluster, RejectsMultipleRanksPerNode) {
  core::ClusterConfig cc = core::elan_cluster(16, /*ppn=*/2);
  cc.env_overrides = false;
  EXPECT_THROW(par::ParCluster{cc}, std::invalid_argument);
}

TEST(ParCollectives, ElanBeatsInfinibandAndLatencyGrowsWithScale) {
  ScopedCheck armed(true);
  auto run_us = [](core::Network net, int nodes) {
    core::ClusterConfig cc = net == core::Network::infiniband
                                 ? core::ib_cluster(nodes)
                                 : core::elan_cluster(nodes);
    cc.env_overrides = false;
    cc.intra_run_threads = 2;
    par::ParCluster cluster(cc);
    return cluster.run(par::CollectiveSpec{par::Collective::allreduce, 8, 2})
        .simulated_us;
  };
  const double ib64 = run_us(core::Network::infiniband, 64);
  const double el64 = run_us(core::Network::quadrics, 64);
  const double el256 = run_us(core::Network::quadrics, 256);
  EXPECT_LT(el64, ib64);   // paper: Elan's collectives are ~2x ahead
  EXPECT_GT(el256, el64);  // log2(n) rounds: latency grows with scale
}

TEST(ShardedFabric, UncontendedChunkMatchesNetFabricTiming) {
  // Same FabricConfig, same route, one chunk: the sharded fabric must
  // reproduce net::Fabric's delivery instant exactly — partitioning is an
  // execution strategy, not a different model.
  const net::FabricConfig fc = core::fabric_config_for(core::Network::quadrics, 64);

  sim::Engine ref_engine;
  net::Fabric ref(ref_engine, fc, 64);
  sim::Time ref_delivery = sim::Time::zero();
  (void)ref.inject(3, 60, 1024, [&](net::DeliveryStatus st) {
    ASSERT_EQ(st, net::DeliveryStatus::delivered);
    ref_delivery = ref_engine.now();
  });
  (void)ref_engine.run();

  par::ParConfig pc;
  pc.partitions = 4;
  pc.threads = 2;
  pc.lookahead = par::ShardedFabric::lookahead_of(fc);
  par::ParEngine pe(pc);
  const net::FatTreeTopology topo(fc.radix_down, fc.levels);
  par::ShardedFabric sharded(pe, fc, 64, par::make_partitioning(topo, 64, 4));
  sim::Time par_delivery = sim::Time::zero();
  const int src_part = sharded.partitioning().of_node(3);
  const int dst_part = sharded.partitioning().of_node(60);
  ASSERT_NE(src_part, dst_part);  // the route genuinely crosses partitions
  pe.shard(src_part).post_at(sim::Time::zero(), [&] {
    sharded.inject(3, 60, 1024,
                   [&] { par_delivery = pe.shard(dst_part).now(); });
  });
  pe.run();
  sharded.audit_drained();
  EXPECT_EQ(par_delivery, ref_delivery);
  EXPECT_GT(pe.cross_posts(), 0u);
}

TEST(Concurrency, ClampHonorsRequestWithoutAPoolAndDividesUnderOne) {
  {
    ScopedExternalWorkers none(1);
    // No sweep pool: deliberate oversubscription is allowed (the digest
    // matrix must be able to run 8 threads on a 1-core CI box).
    EXPECT_EQ(sim::clamp_intra_run_threads(8), 8);
    EXPECT_EQ(sim::clamp_intra_run_threads(0), 1);
  }
  {
    ScopedExternalWorkers pool(1 << 20);  // pool wider than any host
    EXPECT_EQ(sim::clamp_intra_run_threads(8), 1);
  }
}

TEST(Cluster, FiberPathRefusesIntraRunThreads) {
  core::ClusterConfig cc = core::elan_cluster(2);
  cc.env_overrides = false;
  cc.intra_run_threads = 4;
  core::Cluster cluster(cc);
  EXPECT_THROW((void)cluster.run([](mpi::Mpi&) {}), std::invalid_argument);
}

TEST(ParDeathTest, CrossPartitionPastScheduleAbortsUnderCheck) {
  // The conservative contract's hard edge: event code that hands work
  // across partitions with less than the lookahead of simulated delay must
  // die loudly under ICSIM_CHECK — silently delivering it would make
  // results depend on the window schedule (and on thread count).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::check::set_enabled(true);
        par::ParConfig pc;
        pc.partitions = 2;
        pc.threads = 1;
        pc.lookahead = sim::Time::us(1);
        par::ParEngine pe(pc);
        pe.shard(0).post_at(sim::Time::us(5), [&] {
          // t == now: inside the current window, lookahead violated.
          pe.post_cross(0, 1, pe.shard(0).now(), [] {});
        });
        pe.run();
      },
      "lookahead");
}

}  // namespace
}  // namespace icsim
