// Fabric timing model: serialization, hop latency, pipelining, contention,
// and in-order delivery per flow.

#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace icsim::net {
namespace {

FabricConfig simple_config() {
  FabricConfig c;
  c.radix_down = 4;
  c.levels = 3;
  c.link_bandwidth = sim::Bandwidth::gb_per_sec(1.0);
  c.switch_latency = sim::Time::ns(100);
  c.wire_latency = sim::Time::ns(20);
  c.mtu_bytes = 2048;
  c.header_bytes = 0;  // most tests want clean arithmetic
  return c;
}

TEST(Fabric, RejectsTooManyNodes) {
  sim::Engine e;
  EXPECT_THROW(Fabric(e, simple_config(), 65), std::invalid_argument);
  Fabric ok(e, simple_config(), 64);
  EXPECT_EQ(ok.num_nodes(), 64);
}

TEST(Fabric, SerializationTimeIncludesHeaders) {
  sim::Engine e;
  auto cfg = simple_config();
  cfg.header_bytes = 32;
  Fabric f(e, cfg, 8);
  // 4096 bytes = 2 MTU packets -> 4096 + 64 header bytes at 1 GB/s.
  EXPECT_EQ(f.serialization_time(4096), sim::Time::ns(4160));
  // Zero-byte chunk still carries one header.
  EXPECT_EQ(f.serialization_time(0), sim::Time::ns(32));
}

TEST(Fabric, SameLeafDeliveryTime) {
  sim::Engine e;
  Fabric f(e, simple_config(), 8);
  sim::Time delivered = sim::Time::zero();
  // Nodes 0 and 1 share a leaf switch: 2 links, 1 switch.
  // Chunk 1000 B: ser 1 us per link; hops: node->sw (ser+wire+switch), then
  // sw->node (ser+wire).  Total = 2*(1us+20ns) + 100ns = 2.14 us.
  f.inject(0, 1, 1000, [&](DeliveryStatus) { delivered = e.now(); });
  e.run();
  EXPECT_EQ(delivered, sim::Time::ns(2140));
}

TEST(Fabric, CrossTreeDeliveryAddsHops) {
  // Measured in separate fabrics so the two flows do not share the source
  // link.  0->63 climbs to level 2: 6 links, 5 switches vs 2 links, 1 switch.
  auto deliver_time = [](int dst) {
    sim::Engine e;
    Fabric f(e, simple_config(), 64);
    sim::Time t = sim::Time::zero();
    f.inject(0, dst, 1000, [&](DeliveryStatus) { t = e.now(); });
    e.run();
    return t;
  };
  const auto extra = deliver_time(63) - deliver_time(1);
  EXPECT_EQ(extra, 4 * sim::Time::ns(1020) + 4 * sim::Time::ns(100));
}

TEST(Fabric, InjectReturnsSourceSerializationDone) {
  sim::Engine e;
  Fabric f(e, simple_config(), 8);
  const sim::Time tx_done = f.inject(0, 1, 1000, nullptr);
  EXPECT_EQ(tx_done, sim::Time::us(1));
}

TEST(Fabric, ChunksOfOneMessagePipelineAcrossHops) {
  sim::Engine e;
  Fabric f(e, simple_config(), 64);
  std::vector<double> arrivals;
  // Two back-to-back 2048 B chunks, far route.  The second chunk's delivery
  // should trail the first by its serialization time (pipelining), not by a
  // full route traversal.
  f.inject(0, 63, 2048, [&](DeliveryStatus) { arrivals.push_back(e.now().to_us()); });
  f.inject(0, 63, 2048, [&](DeliveryStatus) { arrivals.push_back(e.now().to_us()); });
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[1] - arrivals[0], 2.048, 1e-6);
}

TEST(Fabric, ContendingFlowsShareALink) {
  sim::Engine e;
  Fabric f(e, simple_config(), 8);
  // Both 0->2 and 1->2 end on the same switch->node link; the second
  // delivery must queue behind the first on that link.
  sim::Time t02 = sim::Time::zero(), t12 = sim::Time::zero();
  f.inject(0, 2, 10000, [&](DeliveryStatus) { t02 = e.now(); });
  f.inject(1, 2, 10000, [&](DeliveryStatus) { t12 = e.now(); });
  e.run();
  const double gap_us = (t12 - t02).to_us();
  // Second flow waits for the shared link: gap ~= serialization of 10 kB.
  EXPECT_NEAR(gap_us, 10.0, 0.5);
}

TEST(Fabric, DisjointFlowsDoNotInterfere) {
  sim::Engine e;
  Fabric f(e, simple_config(), 8);
  sim::Time alone = sim::Time::zero();
  f.inject(0, 1, 10000, [&](DeliveryStatus) { alone = e.now(); });
  e.run();

  sim::Engine e2;
  Fabric f2(e2, simple_config(), 8);
  sim::Time together = sim::Time::zero();
  f2.inject(0, 1, 10000, [&](DeliveryStatus) { together = e2.now(); });
  f2.inject(6, 7, 10000, nullptr);  // different leaf entirely
  e2.run();
  EXPECT_EQ(alone, together);
}

TEST(Fabric, PerFlowDeliveryIsInOrder) {
  sim::Engine e;
  Fabric f(e, simple_config(), 64);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    f.inject(3, 40, 100 + static_cast<std::uint32_t>(i), [&order, i](DeliveryStatus) {
      order.push_back(i);
    });
  }
  e.run();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Fabric, CountsChunks) {
  sim::Engine e;
  Fabric f(e, simple_config(), 8);
  f.inject(0, 1, 100, nullptr);
  f.inject(1, 0, 100, nullptr);
  e.run();
  EXPECT_EQ(f.chunks_sent(), 2u);
  EXPECT_GT(f.max_link_busy_time(), sim::Time::zero());
}

}  // namespace
}  // namespace icsim::net
