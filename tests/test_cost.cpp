// Cost model: bill-of-materials construction and the paper's Section 5
// conclusions as numeric anchors.

#include <gtest/gtest.h>

#include "cost/cost_model.hpp"

namespace icsim::cost {
namespace {

TEST(Cost, SingleSwitchCases) {
  const auto q = quadrics_network(32);
  EXPECT_EQ(q.switch_count, 1);  // one 64-port chassis
  const auto i96 = ib96_network(96);
  EXPECT_EQ(i96.switch_count, 1);
  const auto i24 = ib_24_288_network(20, false);
  EXPECT_EQ(i24.switch_count, 1);
  const auto i288 = ib_24_288_network(200, false);
  EXPECT_EQ(i288.switch_count, 1);
}

TEST(Cost, RejectsNonPositiveNodes) {
  EXPECT_THROW((void)quadrics_network(0), std::invalid_argument);
  EXPECT_THROW((void)ib96_network(-1), std::invalid_argument);
  EXPECT_THROW((void)ib_24_288_network(0, true), std::invalid_argument);
}

TEST(Cost, FederationKicksInAbove64Nodes) {
  const auto small = quadrics_network(64);
  const auto big = quadrics_network(65);
  EXPECT_EQ(small.switch_count, 1);
  EXPECT_GE(big.switch_count, 3);  // 2 chassis + 1 top switch
  EXPECT_GT(big.cable_count, small.cable_count + 1);  // uplink per node
}

TEST(Cost, Ib96FatTreeAbove96Nodes) {
  const auto c = ib96_network(1024);
  // 22 leaves + 11 spines.
  EXPECT_EQ(c.switch_count, 33);
  EXPECT_EQ(c.cable_count, 1024 + 22 * 48);
}

TEST(Cost, FullBisectionCostsMoreThanOversubscribed) {
  const auto fb = ib_24_288_network(1024, true);
  const auto os = ib_24_288_network(1024, false);
  EXPECT_GT(fb.total(), os.total());
}

TEST(Cost, QuadricsIsTheMostExpensiveNetworkAtScale) {
  // Figure 7's ordering: Elan-4 on top, IB-96 next, the 24/288 builds far
  // cheaper.
  for (const int n : {128, 512, 1024, 4096}) {
    const double q = quadrics_network(n).per_node(n);
    const double i96 = ib96_network(n).per_node(n);
    const double i24 = ib_24_288_network(n, false).per_node(n);
    EXPECT_GT(q, i96) << n;
    EXPECT_GT(i96, i24) << n;
  }
}

TEST(Cost, PaperNetworkPerNodeDeltaAnchor) {
  // Section 5: network cost per node differs by about 6.5% at large scale
  // (Quadrics vs InfiniBand-96).
  const int n = 1024;
  const double q = quadrics_network(n).per_node(n);
  const double i96 = ib96_network(n).per_node(n);
  const double delta = (q - i96) / i96;
  EXPECT_NEAR(delta, 0.065, 0.02);
}

TEST(Cost, PaperTotalSystemAnchors) {
  // Section 5 with a $2,500 node: Elan-4 total system cost is ~4% above
  // the 96-port InfiniBand build and ~51% above the 24/288 build.
  const int n = 1024;
  const double q = total_system_per_node(quadrics_network(n), n);
  const double i96 = total_system_per_node(ib96_network(n), n);
  const double i24 = total_system_per_node(ib_24_288_network(n, false), n);
  EXPECT_NEAR(q / i96, 1.04, 0.02);
  EXPECT_NEAR(q / i24, 1.51, 0.04);
}

TEST(Cost, PerPortCostFallsWithScaleWithinASwitchTier) {
  // Amortizing a big switch over more ports gets cheaper until the next
  // tier of switching is needed.
  const double at8 = ib96_network(8).per_node(8);
  const double at96 = ib96_network(96).per_node(96);
  EXPECT_GT(at8, at96);
  const double q8 = quadrics_network(8).per_node(8);
  const double q64 = quadrics_network(64).per_node(64);
  EXPECT_GT(q8, q64);
}

}  // namespace
}  // namespace icsim::cost
