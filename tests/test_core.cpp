// Core layer: cluster assembly, determinism, extrapolation fitting and the
// reporting helpers.

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/extrapolate.hpp"
#include "core/report.hpp"

namespace icsim::core {
namespace {

TEST(Cluster, RejectsBadShape) {
  EXPECT_THROW(Cluster(ib_cluster(0, 1)), std::invalid_argument);
  EXPECT_THROW(Cluster(elan_cluster(2, 0)), std::invalid_argument);
}

TEST(Cluster, RankAndSizeVisible) {
  Cluster cluster(elan_cluster(3, 2));
  EXPECT_EQ(cluster.ranks(), 6);
  int seen = 0;
  cluster.run([&](mpi::Mpi& mpi) {
    EXPECT_EQ(mpi.size(), 6);
    EXPECT_GE(mpi.rank(), 0);
    EXPECT_LT(mpi.rank(), 6);
    ++seen;
  });
  EXPECT_EQ(seen, 6);
}

TEST(Cluster, BlockRankPlacement) {
  Cluster cluster(ib_cluster(2, 2));
  // Ranks 0,1 on node 0; ranks 2,3 on node 1 (as the study ran).
  EXPECT_EQ(cluster.node_of_rank(0).id(), 0);
  EXPECT_EQ(cluster.node_of_rank(1).id(), 0);
  EXPECT_EQ(cluster.node_of_rank(2).id(), 1);
  EXPECT_EQ(cluster.node_of_rank(3).id(), 1);
}

TEST(Cluster, DeterministicEndToEnd) {
  auto run_once = [] {
    Cluster cluster(ib_cluster(4, 2));
    cluster.run([](mpi::Mpi& mpi) {
      for (int i = 0; i < 5; ++i) {
        double v = mpi.rank();
        (void)mpi.allreduce(v, mpi::ReduceOp::sum);
        mpi.compute(sim::Time::sec(1e-6 * (mpi.rank() + 1)));
      }
    });
    return cluster.engine().now();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Cluster, IbRingMemoryScalesWithJobSize) {
  Cluster small(ib_cluster(2, 1));
  Cluster big(ib_cluster(16, 2));
  EXPECT_GT(big.ib_ring_memory_per_rank(), small.ib_ring_memory_per_rank());
  Cluster elan(elan_cluster(16, 2));
  EXPECT_EQ(elan.ib_ring_memory_per_rank(), 0u);  // connectionless
}

TEST(Cluster, InitCostChargedWhenRequested) {
  ClusterConfig free_cfg = ib_cluster(2, 1);
  ClusterConfig charged_cfg = ib_cluster(2, 1);
  charged_cfg.charge_init = true;
  Cluster free_cl(free_cfg), charged_cl(charged_cfg);
  const auto t_free = free_cl.run([](mpi::Mpi&) {});
  const auto t_charged = charged_cl.run([](mpi::Mpi&) {});
  EXPECT_GT(t_charged, t_free);
}

TEST(Extrapolate, FitRecoversExactTrend) {
  // Construct data from a known trend and recover it.
  ScalingTrend truth;
  truth.base_nodes = 8;
  truth.base_efficiency = 0.95;
  truth.per_doubling = 0.97;
  const double t1 = 10.0;
  const double t8 = t1 / truth.efficiency_at(8);
  const double t32 = t1 / truth.efficiency_at(32);
  const auto fit = fit_scaled_trend(t1, 8, t8, 32, t32);
  EXPECT_NEAR(fit.base_efficiency, 0.95, 1e-12);
  EXPECT_NEAR(fit.per_doubling, 0.97, 1e-12);
  EXPECT_NEAR(fit.efficiency_at(1024), truth.efficiency_at(1024), 1e-12);
}

TEST(Extrapolate, TimeGrowsAsEfficiencyDecays) {
  ScalingTrend tr;
  tr.base_nodes = 8;
  tr.base_efficiency = 0.9;
  tr.per_doubling = 0.95;
  EXPECT_GT(tr.time_at(1024, 1.0), tr.time_at(32, 1.0));
}

TEST(Extrapolate, RejectsBadAnchors) {
  EXPECT_THROW((void)fit_scaled_trend(1.0, 32, 1.0, 8, 1.0),
               std::invalid_argument);
}

TEST(Report, EfficiencyHelpers) {
  EXPECT_DOUBLE_EQ(scaled_efficiency(10.0, 12.5), 0.8);
  EXPECT_DOUBLE_EQ(fixed_efficiency(16.0, 1, 2.0, 16), 0.5);
  EXPECT_DOUBLE_EQ(fixed_efficiency(16.0, 4, 4.0, 16), 1.0);
}

TEST(Report, Formatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_int(42), "42");
}

TEST(Calibration, FabricsScaleToNodeCount) {
  EXPECT_EQ(ib_fabric(96).levels, 2);
  EXPECT_EQ(ib_fabric(145).levels, 3);  // beyond 144 needs another level
  EXPECT_EQ(elan_fabric(64).levels, 3);
  EXPECT_EQ(elan_fabric(65).levels, 4);
}

}  // namespace
}  // namespace icsim::core

namespace icsim::core {
namespace {

TEST(Cluster, StatsReflectTraffic) {
  Cluster ib(ib_cluster(2, 1));
  ib.run([](mpi::Mpi& mpi) {
    std::vector<std::byte> buf(100000);
    if (mpi.rank() == 0) {
      mpi.send(buf.data(), buf.size(), 1, 0);
    } else {
      mpi.recv(buf.data(), buf.size(), 0, 0);
    }
  });
  const auto s = ib.stats();
  EXPECT_GT(s.fabric_chunks, 10u);       // 100 kB in 4 kB chunks + control
  EXPECT_GT(s.hca_writes, 2u);           // RTS + CTS + data (+credits)
  EXPECT_GT(s.reg_misses, 0u);           // rendezvous pinned user buffers
  EXPECT_GT(s.events_processed, 100u);
  EXPECT_GT(s.max_link_busy_us, 10.0);
  EXPECT_EQ(s.nic_buffer_high_water, 0u);  // no Elan hardware present

  Cluster el(elan_cluster(2, 1));
  el.run([](mpi::Mpi& mpi) {
    std::vector<std::byte> buf(5000);
    if (mpi.rank() == 0) {
      mpi.send(buf.data(), buf.size(), 1, 0);
    } else {
      mpi.compute(sim::Time::sec(1e-3));  // force the unexpected path into NIC SDRAM
      mpi.recv(buf.data(), buf.size(), 0, 0);
    }
  });
  const auto e = el.stats();
  EXPECT_GE(e.nic_buffer_high_water, 5000u);
  EXPECT_GT(e.nic_thread_busy_us, 0.0);
  EXPECT_EQ(e.hca_writes, 0u);
}

}  // namespace
}  // namespace icsim::core

#include "core/loggp.hpp"

namespace icsim::core {
namespace {

TEST(LogGp, ParametersLandInCalibratedBands) {
  const auto ib = measure_loggp(ib_cluster(2));
  const auto el = measure_loggp(elan_cluster(2));
  // Offload wins on every host-visible axis...
  EXPECT_LT(el.o_send_us, ib.o_send_us);
  EXPECT_LT(el.g_us, ib.g_us);
  EXPECT_LT(el.half_rtt_us, ib.half_rtt_us);
  EXPECT_GT(el.L_us, 0.0);
  EXPECT_GT(ib.L_us, 0.0);
  // ...except the per-byte gap, which PCI-X pins for both.
  EXPECT_NEAR(ib.G_ns_per_byte, el.G_ns_per_byte, 0.3);
  // Sanity magnitudes (us-scale latencies, ~1 ns/B bandwidth).
  EXPECT_LT(ib.half_rtt_us, 7.0);
  EXPECT_GT(ib.G_ns_per_byte, 0.9);
}

TEST(LogGp, GapMatchesStreamingRate) {
  const auto el = measure_loggp(elan_cluster(2));
  // g is defined as 1/rate; a small message every g must sustain > 1M/s
  // on Elan-4 (its NIC message-rate advantage).
  EXPECT_LT(el.g_us, 1.0);
}

}  // namespace
}  // namespace icsim::core
