// Node model: compute contention, host copies, and PCI-X DMA sharing.

#include <gtest/gtest.h>

#include "node/node.hpp"
#include "sim/fiber.hpp"

namespace icsim::node {
namespace {

NodeConfig test_config() {
  NodeConfig c;
  c.cpus = 2;
  c.memory_copy_bandwidth = sim::Bandwidth::gb_per_sec(1.0);
  c.memory_copy_overhead = sim::Time::zero();
  c.pcix_bandwidth = sim::Bandwidth::mb_per_sec(1000.0);
  c.pcix_dma_overhead = sim::Time::zero();
  c.smp_compute_slowdown = 1.5;  // exaggerated for test visibility
  return c;
}

TEST(Node, RejectsZeroCpus) {
  sim::Engine e;
  auto cfg = test_config();
  cfg.cpus = 0;
  EXPECT_THROW(Node(e, 0, cfg), std::invalid_argument);
}

TEST(Node, UncontendedComputeTakesNominalTime) {
  sim::Engine e;
  Node n(e, 0, test_config());
  sim::Time done = sim::Time::zero();
  sim::Fiber f([&] {
    n.compute(sim::Time::us(10));
    done = e.now();
  });
  f.resume();
  e.run();
  EXPECT_EQ(done, sim::Time::us(10));
}

TEST(Node, ConcurrentComputeSlowsTheSecondRank) {
  sim::Engine e;
  Node n(e, 0, test_config());
  sim::Time done_a = sim::Time::zero(), done_b = sim::Time::zero();
  sim::Fiber a([&] {
    n.compute(sim::Time::us(10));
    done_a = e.now();
  });
  sim::Fiber b([&] {
    n.compute(sim::Time::us(10));
    done_b = e.now();
  });
  a.resume();  // starts alone: nominal duration
  b.resume();  // overlaps with a: stretched by 1.5x
  e.run();
  EXPECT_EQ(done_a, sim::Time::us(10));
  EXPECT_EQ(done_b, sim::Time::us(15));
}

TEST(Node, SingleCpuNodeHasNoSmpSlowdown) {
  sim::Engine e;
  auto cfg = test_config();
  cfg.cpus = 1;
  Node n(e, 0, cfg);
  sim::Time done_b = sim::Time::zero();
  sim::Fiber a([&] { n.compute(sim::Time::us(10)); });
  sim::Fiber b([&] {
    n.compute(sim::Time::us(10));
    done_b = e.now();
  });
  a.resume();
  b.resume();
  e.run();
  EXPECT_EQ(done_b, sim::Time::us(10));
}

TEST(Node, HostCopyChargesMemoryBus) {
  sim::Engine e;
  Node n(e, 0, test_config());
  sim::Time done = sim::Time::zero();
  sim::Fiber f([&] {
    n.host_copy(10'000);  // 10 kB at 1 GB/s = 10 us
    done = e.now();
  });
  f.resume();
  e.run();
  EXPECT_EQ(done, sim::Time::us(10));
}

TEST(Node, ConcurrentHostCopiesSerializeOnMembus) {
  sim::Engine e;
  Node n(e, 0, test_config());
  sim::Time done_b = sim::Time::zero();
  sim::Fiber a([&] { n.host_copy(10'000); });
  sim::Fiber b([&] {
    n.host_copy(10'000);
    done_b = e.now();
  });
  a.resume();
  b.resume();
  e.run();
  EXPECT_EQ(done_b, sim::Time::us(20));
}

TEST(Node, DmaSharesPcixFifo) {
  sim::Engine e;
  Node n(e, 0, test_config());
  const sim::Time t1 = n.dma(1'000'000, nullptr);  // 1 MB at 1000 MB/s = 1 ms
  const sim::Time t2 = n.dma(1'000'000, nullptr);
  EXPECT_EQ(t1, sim::Time::ms(1));
  EXPECT_EQ(t2, sim::Time::ms(2));
}

TEST(Node, DmaOverheadPerTransaction) {
  sim::Engine e;
  auto cfg = test_config();
  cfg.pcix_dma_overhead = sim::Time::ns(250);
  Node n(e, 0, cfg);
  EXPECT_EQ(n.dma(1000, nullptr), sim::Time::us(1) + sim::Time::ns(250));
}

}  // namespace
}  // namespace icsim::node
