// Tracing & metrics subsystem: ring-buffer recorder, zero-overhead disabled
// path, Chrome-trace JSON well-formedness, metrics registry serialization,
// and the end-to-end Cluster trace/metrics file emission.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/sink.hpp"
#include "trace/trace.hpp"
#include "trace/tracer.hpp"

namespace icsim {
namespace {

// ------------------------------------------------------------ JSON checker
//
// A minimal recursive-descent validator: enough to assert the exporters emit
// structurally well-formed JSON (balanced, quoted, comma-separated) without
// pulling in a JSON library the container doesn't have.

class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : s_(std::move(text)) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

trace::Event span_event(std::int64_t t_ps, const char* name = "work") {
  trace::Event e;
  e.kind = trace::Event::Kind::span;
  e.cat = trace::Category::engine;
  e.component = 1;
  e.name = name;
  e.t_ps = t_ps;
  e.dur_ps = 1000;
  return e;
}

// ------------------------------------------------------------- ring buffer

TEST(RingBufferSink, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(trace::RingBufferSink(1).capacity(), 64u);    // minimum
  EXPECT_EQ(trace::RingBufferSink(64).capacity(), 64u);
  EXPECT_EQ(trace::RingBufferSink(65).capacity(), 128u);
  EXPECT_EQ(trace::RingBufferSink(1000).capacity(), 1024u);
}

TEST(RingBufferSink, KeepsAllEventsBeforeWrap) {
  trace::RingBufferSink sink(64);
  for (int i = 0; i < 10; ++i) sink.record(span_event(i));
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].t_ps, i);
}

TEST(RingBufferSink, WraparoundKeepsNewestAndCountsDropped) {
  trace::RingBufferSink sink(64);  // capacity exactly 64
  for (int i = 0; i < 150; ++i) sink.record(span_event(i));
  EXPECT_EQ(sink.recorded(), 150u);
  EXPECT_EQ(sink.dropped(), 150u - 64u);
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 64u);
  // Oldest-first window of the most recent 64 events: 86..149.
  EXPECT_EQ(events.front().t_ps, 150 - 64);
  EXPECT_EQ(events.back().t_ps, 149);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].t_ps, events[i - 1].t_ps + 1);
  }
}

// -------------------------------------------------------------- disabled

TEST(Tracer, DisabledByDefaultAndLazyComponentTable) {
  sim::Engine e;
  EXPECT_FALSE(e.tracer().enabled());
  // A full simulation with tracing off must register no components and
  // record no events (instrumentation is behind one branch).
  core::Cluster cluster(core::ib_cluster(2, 1));
  cluster.run([](mpi::Mpi& mpi) {
    double v = 1.0;
    (void)mpi.allreduce(v, mpi::ReduceOp::sum);
  });
  EXPECT_FALSE(cluster.engine().tracer().enabled());
  EXPECT_TRUE(cluster.engine().tracer().components().empty());
}

TEST(Tracer, EnableDisableGateRecording) {
  trace::RingBufferSink sink(64);
  trace::Tracer tr;
  tr.enable(sink);
  EXPECT_TRUE(tr.enabled());
  tr.span(trace::Category::engine, 1, "a", sim::Time::ps(0), sim::Time::ps(10));
  tr.disable();
  EXPECT_FALSE(tr.enabled());
  EXPECT_EQ(sink.recorded(), 1u);
}

// ------------------------------------------------------------- exporters

TEST(ChromeTrace, WellFormedJsonWithMetadataAndEvents) {
  trace::RingBufferSink sink(256);
  trace::Tracer tr;
  tr.enable(sink);
  const auto link = tr.register_component(trace::Category::link, "node0->sw");
  const auto rank = tr.register_component(trace::Category::mpi, "rank0");
  tr.span(trace::Category::mpi, rank, "send \"x\"\\n", sim::Time::us(1),
          sim::Time::us(3));
  tr.instant(trace::Category::mpi, rank, "pin.miss", sim::Time::us(2), 1.5);
  tr.counter(trace::Category::link, link, "queue_depth", sim::Time::us(2.5),
             3.0);

  std::ostringstream os;
  trace::write_chrome_trace(os, tr, sink.snapshot());
  const std::string json = os.str();

  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  // Structure: trace-event envelope, thread metadata, all three event types.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("node0->sw"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // 1 us simulated = 1 trace us: the span starts at ts 1.000000.
  EXPECT_NE(json.find("\"ts\":1.000000"), std::string::npos);
}

TEST(ChromeTrace, EmptyTraceIsStillValidJson) {
  trace::Tracer tr;
  std::ostringstream os;
  trace::write_chrome_trace(os, tr, {});
  JsonChecker checker(os.str());
  EXPECT_TRUE(checker.valid()) << os.str();
}

TEST(CountersCsv, OneRowPerCounterEvent) {
  trace::RingBufferSink sink(64);
  trace::Tracer tr;
  tr.enable(sink);
  const auto c = tr.register_component(trace::Category::tports, "elan0");
  tr.counter(trace::Category::tports, c, "unexpected_depth", sim::Time::us(1),
             2.0);
  tr.counter(trace::Category::tports, c, "unexpected_depth", sim::Time::us(2),
             3.0);
  tr.span(trace::Category::tports, c, "match", sim::Time::ps(0),
          sim::Time::ps(10));  // not a counter: skipped

  std::ostringstream os;
  trace::write_counters_csv(os, tr, sink.snapshot());
  const std::string csv = os.str();
  std::size_t rows = 0;
  for (char ch : csv) rows += ch == '\n' ? 1u : 0u;
  EXPECT_EQ(rows, 3u);  // header + 2 counter rows
  EXPECT_NE(csv.find("t_us,category,component,name,value"), std::string::npos);
  EXPECT_NE(csv.find("elan.tports,elan0,unexpected_depth"), std::string::npos);
}

TEST(MetricsRegistry, JsonHasAllSections) {
  trace::MetricsRegistry m;
  m.counter("sim.events") = 42;
  m.stat("latency_us").add(1.5);
  m.stat("latency_us").add(2.5);
  m.histogram("dist", 0.0, 10.0, 4).add(3.0);
  const std::string json = m.to_json();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.valid()) << json;
  EXPECT_NE(json.find("\"sim.events\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"mean\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

// ---------------------------------------------------- end-to-end Cluster

TEST(ClusterTrace, IbRunEmitsTraceAndMetricsFiles) {
  core::ClusterConfig cfg = core::ib_cluster(2, 1);
  cfg.trace_path = "test_trace_ib.json";
  core::Cluster cluster(cfg);
  cluster.run([](mpi::Mpi& mpi) {
    std::vector<char> buf(8192, 'x');
    if (mpi.rank() == 0) {
      mpi.send(buf.data(), buf.size(), 1, 7);
      mpi.recv(buf.data(), buf.size(), 1, 7);
    } else {
      mpi.recv(buf.data(), buf.size(), 0, 7);
      mpi.send(buf.data(), buf.size(), 0, 7);
    }
  });

  const std::string trace_json = slurp("test_trace_ib.json");
  ASSERT_FALSE(trace_json.empty());
  JsonChecker checker(trace_json);
  EXPECT_TRUE(checker.valid());
  // The per-layer spans the acceptance asks for: MPI post -> HCA pipeline
  // -> per-hop link -> delivery.
  EXPECT_NE(trace_json.find("send.rndv"), std::string::npos);  // 8 KB > eager
  EXPECT_NE(trace_json.find("rdma_write"), std::string::npos);
  EXPECT_NE(trace_json.find("\"pkt\""), std::string::npos);
  EXPECT_NE(trace_json.find("rank0"), std::string::npos);
  EXPECT_NE(trace_json.find("hca0"), std::string::npos);

  const std::string metrics = slurp("test_trace_ib.metrics.json");
  ASSERT_FALSE(metrics.empty());
  JsonChecker mchecker(metrics);
  EXPECT_TRUE(mchecker.valid()) << metrics;
  EXPECT_NE(metrics.find("net.link_utilization"), std::string::npos);
  EXPECT_NE(metrics.find("ib.regcache.hits"), std::string::npos);
  EXPECT_NE(metrics.find("ib.regcache.hit_rate"), std::string::npos);
  EXPECT_NE(metrics.find("mpi.max_unexpected_depth"), std::string::npos);
  EXPECT_NE(metrics.find("sim.events_processed"), std::string::npos);

  const std::string csv = slurp("test_trace_ib.counters.csv");
  EXPECT_NE(csv.find("t_us,category,component,name,value"), std::string::npos);

  std::remove("test_trace_ib.json");
  std::remove("test_trace_ib.metrics.json");
  std::remove("test_trace_ib.counters.csv");
}

TEST(ClusterTrace, ElanRunEmitsTportsSpansAndQueueStats) {
  core::ClusterConfig cfg = core::elan_cluster(2, 1);
  cfg.trace_path = "test_trace_elan.json";
  core::Cluster cluster(cfg);
  cluster.run([](mpi::Mpi& mpi) {
    std::vector<char> buf(4096, 'q');
    if (mpi.rank() == 0) {
      mpi.send(buf.data(), buf.size(), 1, 3);
    } else {
      mpi.compute(sim::Time::sec(5e-6));  // rank 1 posts late -> unexpected-queue traffic
      mpi.recv(buf.data(), buf.size(), 0, 3);
    }
  });

  const std::string trace_json = slurp("test_trace_elan.json");
  ASSERT_FALSE(trace_json.empty());
  JsonChecker checker(trace_json);
  EXPECT_TRUE(checker.valid());
  EXPECT_NE(trace_json.find("\"match\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"rx\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"tx\""), std::string::npos);
  EXPECT_NE(trace_json.find("elan0"), std::string::npos);

  const std::string metrics = slurp("test_trace_elan.metrics.json");
  ASSERT_FALSE(metrics.empty());
  EXPECT_NE(metrics.find("elan.unexpected_depth"), std::string::npos);
  EXPECT_NE(metrics.find("elan.max_unexpected_depth"), std::string::npos);
  EXPECT_NE(metrics.find("net.link_utilization"), std::string::npos);

  std::remove("test_trace_elan.json");
  std::remove("test_trace_elan.metrics.json");
  std::remove("test_trace_elan.counters.csv");
}

TEST(ClusterTrace, SecondTracingClusterGetsNumberedFiles) {
  core::ClusterConfig cfg = core::elan_cluster(2, 1);
  cfg.trace_path = "test_trace_multi.json";
  auto pingpong = [](mpi::Mpi& mpi) {
    char b[64] = {};
    if (mpi.rank() == 0) {
      mpi.send(b, sizeof b, 1, 1);
    } else {
      mpi.recv(b, sizeof b, 0, 1);
    }
  };
  std::string first, second;
  {
    core::Cluster c1(cfg);
    c1.run(pingpong);
  }
  {
    core::Cluster c2(cfg);
    c2.run(pingpong);
  }
  // The process-wide instance counter has advanced an unknown amount by the
  // earlier tests; just assert both runs produced distinct non-empty files.
  int found = 0;
  for (int n = 1; n < 20; ++n) {
    const std::string path =
        n == 1 ? "test_trace_multi.json"
               : "test_trace_multi." + std::to_string(n) + ".json";
    const std::string body = slurp(path);
    if (!body.empty()) {
      ++found;
      std::remove(path.c_str());
      std::remove((n == 1 ? std::string("test_trace_multi")
                          : "test_trace_multi." + std::to_string(n))
                      .append(".metrics.json")
                      .c_str());
      std::remove((n == 1 ? std::string("test_trace_multi")
                          : "test_trace_multi." + std::to_string(n))
                      .append(".counters.csv")
                      .c_str());
    }
  }
  EXPECT_EQ(found, 2);
}

}  // namespace
}  // namespace icsim
