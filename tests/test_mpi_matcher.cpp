// Matching engine unit tests: the two-queue algorithm, wildcards, ordering
// and scan accounting that both transports build on.

#include <gtest/gtest.h>

#include "mpi/matcher.hpp"

namespace icsim::mpi {
namespace {

Envelope env(int src, int tag, std::uint64_t id = 0, int context = 0) {
  Envelope e;
  e.src = src;
  e.tag = tag;
  e.id = id;
  e.context = context;
  e.bytes = 8;
  return e;
}

PostedRecv recv(int src, int tag, std::uint64_t id = 0, int context = 0) {
  PostedRecv r;
  r.src = src;
  r.tag = tag;
  r.id = id;
  r.context = context;
  return r;
}

TEST(Matcher, ArrivalMatchesPostedRecv) {
  Matcher m;
  EXPECT_FALSE(m.post(recv(1, 7, 42)).match.has_value());
  const auto res = m.arrive(env(1, 7));
  ASSERT_TRUE(res.match.has_value());
  EXPECT_EQ(res.match->id, 42u);
  EXPECT_EQ(m.posted_depth(), 0u);
}

TEST(Matcher, UnmatchedArrivalGoesUnexpected) {
  Matcher m;
  EXPECT_FALSE(m.arrive(env(0, 1, 5)).match.has_value());
  EXPECT_EQ(m.unexpected_depth(), 1u);
  const auto res = m.post(recv(0, 1));
  ASSERT_TRUE(res.match.has_value());
  EXPECT_EQ(res.match->id, 5u);
  EXPECT_EQ(m.unexpected_depth(), 0u);
}

TEST(Matcher, WildcardSourceMatches) {
  Matcher m;
  (void)m.post(recv(kAnySource, 3, 1));
  EXPECT_TRUE(m.arrive(env(9, 3)).match.has_value());
}

TEST(Matcher, WildcardTagMatches) {
  Matcher m;
  (void)m.post(recv(2, kAnyTag, 1));
  EXPECT_TRUE(m.arrive(env(2, 999)).match.has_value());
}

TEST(Matcher, ContextSeparatesDomains) {
  Matcher m;
  (void)m.post(recv(0, 1, 1, /*context=*/5));
  EXPECT_FALSE(m.arrive(env(0, 1, 2, /*context=*/6)).match.has_value());
  EXPECT_TRUE(m.arrive(env(0, 1, 3, /*context=*/5)).match.has_value());
}

TEST(Matcher, PostedQueueSearchedInPostOrder) {
  Matcher m;
  (void)m.post(recv(kAnySource, kAnyTag, 1));
  (void)m.post(recv(kAnySource, kAnyTag, 2));
  EXPECT_EQ(m.arrive(env(0, 0)).match->id, 1u);
  EXPECT_EQ(m.arrive(env(0, 0)).match->id, 2u);
}

TEST(Matcher, UnexpectedQueueSearchedInArrivalOrder) {
  Matcher m;
  (void)m.arrive(env(3, 1, 10));
  (void)m.arrive(env(3, 1, 11));
  EXPECT_EQ(m.post(recv(3, 1)).match->id, 10u);
  EXPECT_EQ(m.post(recv(3, 1)).match->id, 11u);
}

TEST(Matcher, SelectiveRecvSkipsNonMatching) {
  Matcher m;
  (void)m.arrive(env(1, 1, 10));
  (void)m.arrive(env(2, 2, 11));
  const auto res = m.post(recv(2, 2));
  ASSERT_TRUE(res.match.has_value());
  EXPECT_EQ(res.match->id, 11u);
  EXPECT_EQ(res.scanned, 2u);  // walked past the non-matching entry
  EXPECT_EQ(m.unexpected_depth(), 1u);
}

TEST(Matcher, ScanCountsReflectQueueDepth) {
  Matcher m;
  for (int i = 0; i < 10; ++i) (void)m.post(recv(i, i, static_cast<std::uint64_t>(i)));
  const auto res = m.arrive(env(9, 9));
  EXPECT_EQ(res.scanned, 10u);
}

TEST(Matcher, ProbeDoesNotConsume) {
  Matcher m;
  (void)m.arrive(env(1, 1, 10));
  EXPECT_TRUE(m.probe(recv(1, 1)).has_value());
  EXPECT_EQ(m.unexpected_depth(), 1u);
  EXPECT_FALSE(m.probe(recv(2, 2)).has_value());
}

TEST(Matcher, CancelPosted) {
  Matcher m;
  (void)m.post(recv(1, 1, 77));
  EXPECT_TRUE(m.cancel_posted(77));
  EXPECT_FALSE(m.cancel_posted(77));
  EXPECT_FALSE(m.arrive(env(1, 1)).match.has_value());
}

TEST(Matcher, TracksMaxUnexpectedDepth) {
  Matcher m;
  for (int i = 0; i < 5; ++i) (void)m.arrive(env(0, i, static_cast<std::uint64_t>(i)));
  (void)m.post(recv(0, 0));
  EXPECT_EQ(m.unexpected_depth(), 4u);
  EXPECT_EQ(m.max_unexpected_depth(), 5u);
}

}  // namespace
}  // namespace icsim::mpi
