// Determinism contract and the ICSIM_CHECK runtime auditor (sim/check.hpp).
//
// The engine folds every executed event's (timestamp, sequence) pair into an
// FNV-1a digest; two runs of the same workload with the same seeds must
// produce the same digest bit-for-bit.  These tests pin that contract for a
// ping-pong exchange and for a fault-injected run (where the RNG seed is
// part of the workload identity), and exercise the hard-fail mode of the
// past-schedule audit.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/cluster.hpp"
#include "fault/plan.hpp"
#include "sim/check.hpp"
#include "sim/engine.hpp"

namespace icsim {
namespace {

/// RAII: force the runtime auditor on (or off) for one test, restoring the
/// environment-derived setting afterwards so test order doesn't matter.
class ScopedCheck {
 public:
  explicit ScopedCheck(bool on) : was_(sim::check::enabled()) {
    sim::check::set_enabled(on);
  }
  ~ScopedCheck() { sim::check::set_enabled(was_); }

 private:
  bool was_;
};

/// Bounce `reps` messages of `bytes` between ranks 0 and 1; return the
/// engine's event digest with the invariant auditor armed throughout.
std::uint64_t pingpong_digest(core::ClusterConfig cfg, std::size_t bytes,
                              int reps) {
  ScopedCheck armed(true);
  core::Cluster cluster(cfg);
  std::vector<std::byte> buf(bytes > 0 ? bytes : 1);
  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() > 1) return;
    const int peer = 1 - mpi.rank();
    for (int i = 0; i < reps; ++i) {
      if (mpi.rank() == 0) {
        mpi.send(buf.data(), bytes, peer, /*tag=*/i);
        (void)mpi.recv(buf.data(), buf.size(), peer, i);
      } else {
        (void)mpi.recv(buf.data(), buf.size(), peer, i);
        mpi.send(buf.data(), bytes, peer, i);
      }
    }
  });
  return cluster.stats().event_digest;
}

TEST(EventDigest, PingPongIdenticalAcrossRuns) {
  for (const auto& make :
       {+[] { return core::ib_cluster(2); }, +[] { return core::elan_cluster(2); }}) {
    const std::uint64_t a = pingpong_digest(make(), 4096, 50);
    const std::uint64_t b = pingpong_digest(make(), 4096, 50);
    EXPECT_NE(a, 0u);
    EXPECT_EQ(a, b) << "same workload + same seed must replay identically";
  }
}

TEST(EventDigest, SensitiveToWorkloadShape) {
  // Not a collision-resistance claim — just that the digest actually tracks
  // the event stream rather than something degenerate.
  EXPECT_NE(pingpong_digest(core::ib_cluster(2), 4096, 50),
            pingpong_digest(core::ib_cluster(2), 8192, 50));
  EXPECT_NE(pingpong_digest(core::ib_cluster(2), 4096, 50),
            pingpong_digest(core::elan_cluster(2), 4096, 50));
}

std::uint64_t faulty_digest(std::uint64_t seed, std::uint64_t* corrupted) {
  ScopedCheck armed(true);
  core::ClusterConfig cfg = core::ib_cluster(4);
  // High enough for a short run to see drops, low enough that the RC retry
  // budget always recovers (cf. ClusterFaults.BerRunDeliversEverything).
  cfg.faults = fault::FaultPlan::parse("ber=1e-6;seed=" + std::to_string(seed));
  core::Cluster cluster(cfg);
  std::vector<std::byte> buf(32768);
  cluster.run([&](mpi::Mpi& mpi) {
    const int peer = mpi.rank() ^ 1;
    for (int i = 0; i < 20; ++i) {
      if (mpi.rank() < peer) {
        mpi.send(buf.data(), buf.size(), peer, i);
        (void)mpi.recv(buf.data(), buf.size(), peer, i);
      } else {
        (void)mpi.recv(buf.data(), buf.size(), peer, i);
        mpi.send(buf.data(), buf.size(), peer, i);
      }
    }
  });
  if (corrupted != nullptr) *corrupted = cluster.stats().chunks_corrupted;
  return cluster.stats().event_digest;
}

TEST(EventDigest, FaultPlanReplaysUnderSameSeed) {
  std::uint64_t corrupted = 0;
  const std::uint64_t a = faulty_digest(7, &corrupted);
  const std::uint64_t b = faulty_digest(7, nullptr);
  EXPECT_GT(corrupted, 0u) << "fault plan too mild to exercise retries";
  EXPECT_EQ(a, b) << "fault injection must be deterministic per seed";
  EXPECT_NE(a, faulty_digest(8, nullptr))
      << "a different fault seed must perturb the event stream";
}

TEST(Check, PastSchedulClampsAndCountsWhenDisabled) {
  ScopedCheck off(false);
  sim::Engine e;
  e.post_at(sim::Time::us(10), [] {});
  (void)e.run();  // now() == 10us
  e.post_at(sim::Time::us(5), [] {});  // in the past: clamped, counted
  (void)e.run();
  EXPECT_EQ(e.past_schedules_clamped(), 1u);
  EXPECT_EQ(e.now(), sim::Time::us(10));
}

TEST(CheckDeathTest, PastScheduleAbortsWhenArmed) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::check::set_enabled(true);
        sim::Engine e;
        e.post_at(sim::Time::us(10), [] {});
        (void)e.run();
        e.post_at(sim::Time::us(5), [] {});  // audit trips here
      },
      "simulated past");
}

TEST(CheckDeathTest, FailedInvariantNamesTheSite) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::check::set_enabled(true);
        ICSIM_CHECK(1 + 1 == 3, "arithmetic is broken");
      },
      "ICSIM_CHECK failed.*1 \\+ 1 == 3.*arithmetic is broken");
}

TEST(Check, DisabledCheckDoesNotEvaluateCondition) {
  ScopedCheck off(false);
  bool evaluated = false;
  ICSIM_CHECK((evaluated = true), "never evaluated when off");
  EXPECT_FALSE(evaluated);
}

}  // namespace
}  // namespace icsim
