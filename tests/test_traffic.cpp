// Open-loop traffic subsystem: plan determinism and pattern semantics,
// end-to-end open-loop runs on both fabrics (digest-reproducible), the
// admission cap, and the degraded-fabric tail asymmetry, scaled down.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/cluster.hpp"
#include "fault/plan.hpp"
#include "sim/rng.hpp"
#include "traffic/plan.hpp"
#include "traffic/workload.hpp"

namespace icsim::traffic {
namespace {

TrafficConfig small_cfg(PatternKind pattern = PatternKind::uniform,
                        double load = 0.3) {
  TrafficConfig cfg;
  cfg.pattern.kind = pattern;
  cfg.load = load;
  cfg.requests_per_client = 40;
  return cfg;
}

// ------------------------------------------------------------------- plans

TEST(TrafficPlan, SameConfigSamePlan) {
  const Plan a = build_plan(small_cfg(), core::Network::infiniband, 8);
  const Plan b = build_plan(small_cfg(), core::Network::infiniband, 8);
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t r = 0; r < a.clients.size(); ++r) {
    ASSERT_EQ(a.clients[r].size(), b.clients[r].size());
    for (std::size_t i = 0; i < a.clients[r].size(); ++i) {
      EXPECT_EQ(a.clients[r][i].arrival, b.clients[r][i].arrival);
      EXPECT_EQ(a.clients[r][i].dsts, b.clients[r][i].dsts);
    }
  }
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.client_targets, b.client_targets);
}

TEST(TrafficPlan, SeedChangesDraws) {
  TrafficConfig cfg = small_cfg();
  const Plan a = build_plan(cfg, core::Network::infiniband, 8);
  cfg.seed ^= 1;
  const Plan b = build_plan(cfg, core::Network::infiniband, 8);
  // Same shape (the horizon is a function of the config, not the draws)...
  EXPECT_EQ(a.horizon, b.horizon);
  // ...different arrivals.
  bool any_differ = false;
  for (std::size_t i = 0; i < a.clients[0].size(); ++i) {
    any_differ |= a.clients[0][i].arrival != b.clients[0][i].arrival;
  }
  EXPECT_TRUE(any_differ);
}

TEST(TrafficPlan, ArrivalsAscendAndNeverTargetSelf) {
  for (const auto kind :
       {ArrivalKind::fixed, ArrivalKind::poisson, ArrivalKind::mmpp}) {
    TrafficConfig cfg = small_cfg();
    cfg.arrival.kind = kind;
    const Plan p = build_plan(cfg, core::Network::quadrics, 8);
    for (int r = 0; r < p.ranks; ++r) {
      sim::Time prev = sim::Time::zero();
      for (const auto& rq : p.clients[static_cast<std::size_t>(r)]) {
        EXPECT_GE(rq.arrival, prev);
        prev = rq.arrival;
        for (const int d : rq.dsts) EXPECT_NE(d, r);
      }
    }
  }
}

TEST(TrafficPlan, HorizonIndependentOfArrivalProcess) {
  TrafficConfig cfg = small_cfg();
  cfg.arrival.kind = ArrivalKind::fixed;
  const Plan fixed = build_plan(cfg, core::Network::infiniband, 8);
  cfg.arrival.kind = ArrivalKind::mmpp;
  const Plan mmpp = build_plan(cfg, core::Network::infiniband, 8);
  EXPECT_EQ(fixed.horizon, mmpp.horizon);
  EXPECT_EQ(fixed.warmup, mmpp.warmup);
}

TEST(TrafficPlan, HotspotConcentratesOnHotRanks) {
  TrafficConfig cfg = small_cfg(PatternKind::hotspot);
  cfg.pattern.hot_count = 2;
  cfg.pattern.hot_frac = 0.8;
  cfg.requests_per_client = 200;
  const Plan p = build_plan(cfg, core::Network::infiniband, 16);
  std::uint64_t hot = 0, total = 0;
  for (const auto& sched : p.clients) {
    for (const auto& rq : sched) {
      for (const int d : rq.dsts) {
        ++total;
        if (d < cfg.pattern.hot_count) ++hot;
      }
    }
  }
  // 80% aimed at 2 of 15 other ranks, plus the uniform tail's share.
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.6);
}

TEST(TrafficPlan, IncastAllRoadsLeadToRankZero) {
  const Plan p = build_plan(small_cfg(PatternKind::incast),
                            core::Network::quadrics, 8);
  EXPECT_FALSE(p.is_client(0));  // the sink only serves
  EXPECT_TRUE(p.is_server(0));
  EXPECT_EQ(p.server_sources[0], 7);
  for (int r = 1; r < 8; ++r) {
    EXPECT_FALSE(p.is_server(r));
    for (const auto& rq : p.clients[static_cast<std::size_t>(r)]) {
      EXPECT_EQ(rq.dsts, std::vector<int>{0});
    }
  }
}

TEST(TrafficPlan, ShuffleWalksEveryPeer) {
  TrafficConfig cfg = small_cfg(PatternKind::shuffle);
  cfg.requests_per_client = 14;  // two full rounds at 8 ranks
  const Plan p = build_plan(cfg, core::Network::infiniband, 8);
  for (int r = 0; r < 8; ++r) {
    std::set<int> seen;
    for (const auto& rq : p.clients[static_cast<std::size_t>(r)]) {
      seen.insert(rq.dsts.at(0));
    }
    EXPECT_EQ(seen.size(), 7u) << "rank " << r;
  }
}

TEST(TrafficPlan, RpcFansOutToDistinctServers) {
  TrafficConfig cfg = small_cfg(PatternKind::rpc);
  cfg.pattern.fan_degree = 3;
  const Plan p = build_plan(cfg, core::Network::infiniband, 8);
  for (const auto& sched : p.clients) {
    for (const auto& rq : sched) {
      ASSERT_EQ(rq.dsts.size(), 3u);
      std::set<int> uniq(rq.dsts.begin(), rq.dsts.end());
      EXPECT_EQ(uniq.size(), 3u);
    }
  }
  // fan * (request + response) payload bytes per request.
  EXPECT_EQ(p.bytes_per_request,
            3ull * (cfg.request_bytes + cfg.response_bytes));
}

TEST(TrafficPlan, PairsOnlyFlowSourcesInject) {
  TrafficConfig cfg = small_cfg(PatternKind::pairs);
  cfg.pattern.flows = {{0, 3}, {1, 2}};
  const Plan p = build_plan(cfg, core::Network::quadrics, 4);
  EXPECT_TRUE(p.is_client(0));
  EXPECT_TRUE(p.is_client(1));
  EXPECT_FALSE(p.is_client(2));
  EXPECT_FALSE(p.is_client(3));
  EXPECT_TRUE(p.is_server(2));
  EXPECT_TRUE(p.is_server(3));
}

TEST(TrafficPlan, RejectsNonsense) {
  EXPECT_THROW(build_plan(small_cfg(), core::Network::infiniband, 1),
               std::invalid_argument);
  TrafficConfig cfg = small_cfg();
  cfg.load = 0.0;
  EXPECT_THROW(build_plan(cfg, core::Network::infiniband, 4),
               std::invalid_argument);
  cfg = small_cfg(PatternKind::pairs);  // empty flow list
  EXPECT_THROW(build_plan(cfg, core::Network::infiniband, 4),
               std::invalid_argument);
  cfg.pattern.flows = {{0, 9}};  // endpoint out of range
  EXPECT_THROW(build_plan(cfg, core::Network::infiniband, 4),
               std::invalid_argument);
}

TEST(TrafficPlan, OfferedWindowExcludesWarmup) {
  TrafficConfig cfg = small_cfg();
  cfg.warmup_frac = 0.5;
  const Plan p = build_plan(cfg, core::Network::infiniband, 4);
  const std::uint64_t scheduled = [&] {
    std::uint64_t n = 0;
    for (const auto& s : p.clients) n += s.size();
    return n;
  }();
  EXPECT_GT(p.offered_in_window(), 0u);
  EXPECT_LT(p.offered_in_window(), scheduled);
}

// ---------------------------------------------------------------- workloads

struct RunOutcome {
  RunStats traffic;
  core::Cluster::RunStats cluster;
};

RunOutcome run_workload(const TrafficConfig& cfg, core::Network net,
                        int nodes) {
  Workload w(cfg, net, nodes);
  core::Cluster cluster(net == core::Network::infiniband
                            ? core::ib_cluster(nodes)
                            : core::elan_cluster(nodes));
  (void)cluster.run([&w](mpi::Mpi& m) { w.rank_main(m); });
  return {w.stats(), cluster.stats()};
}

TEST(TrafficWorkload, UniformDeliversAtLowLoadOnBothFabrics) {
  for (const auto net :
       {core::Network::infiniband, core::Network::quadrics}) {
    const RunOutcome o = run_workload(small_cfg(), net, 4);
    EXPECT_GT(o.traffic.offered, 0u);
    EXPECT_EQ(o.traffic.dropped, 0u);
    // Nothing may be lost: every in-window request completes, on time or as
    // a counted straggler.
    EXPECT_EQ(o.traffic.delivered + o.traffic.stragglers, o.traffic.offered);
    EXPECT_GE(o.traffic.delivery_ratio(), 0.9);
    EXPECT_GT(o.traffic.p50_us, 0.0);
    EXPECT_GE(o.traffic.p99_us, o.traffic.p50_us);
    EXPECT_GE(o.traffic.p999_us, o.traffic.p99_us);
    EXPECT_GT(o.traffic.delivered_mbs, 0.0);
  }
}

TEST(TrafficWorkload, RerunReproducesTheEventDigest) {
  const RunOutcome a = run_workload(small_cfg(), core::Network::infiniband, 4);
  const RunOutcome b = run_workload(small_cfg(), core::Network::infiniband, 4);
  EXPECT_EQ(a.cluster.event_digest, b.cluster.event_digest);
  EXPECT_EQ(a.cluster.events_processed, b.cluster.events_processed);
  EXPECT_EQ(a.traffic.p99_us, b.traffic.p99_us);
}

TEST(TrafficWorkload, MmppBurstsStretchTheTail) {
  TrafficConfig cfg = small_cfg(PatternKind::uniform, 0.5);
  cfg.requests_per_client = 120;
  const RunOutcome poisson =
      run_workload(cfg, core::Network::infiniband, 4);
  cfg.arrival.kind = ArrivalKind::mmpp;
  cfg.arrival.burst_factor = 8.0;
  const RunOutcome mmpp = run_workload(cfg, core::Network::infiniband, 4);
  // Same mean load, burstier arrivals: the p99 tail must not shrink.
  EXPECT_GE(mmpp.traffic.p99_us, poisson.traffic.p99_us);
}

TEST(TrafficWorkload, IncastCompletesAndSinkServesEveryone) {
  const RunOutcome o =
      run_workload(small_cfg(PatternKind::incast), core::Network::quadrics, 4);
  EXPECT_EQ(o.traffic.delivered + o.traffic.stragglers, o.traffic.offered);
}

TEST(TrafficWorkload, RpcRoundTripCostsMoreThanOneWay) {
  TrafficConfig rpc = small_cfg(PatternKind::rpc, 0.2);
  rpc.pattern.fan_degree = 2;
  rpc.service = sim::Time::us(1.0);
  const RunOutcome fan = run_workload(rpc, core::Network::infiniband, 4);
  const RunOutcome one_way =
      run_workload(small_cfg(PatternKind::uniform, 0.2),
                   core::Network::infiniband, 4);
  EXPECT_EQ(fan.traffic.delivered + fan.traffic.stragglers,
            fan.traffic.offered);
  EXPECT_GT(fan.traffic.p50_us, one_way.traffic.p50_us);
}

TEST(TrafficWorkload, AdmissionCapDropsUnderOverload) {
  TrafficConfig cfg = small_cfg(PatternKind::incast, 2.0);
  cfg.requests_per_client = 80;
  cfg.client_backlog_cap = 1;
  const RunOutcome o = run_workload(cfg, core::Network::infiniband, 4);
  EXPECT_GT(o.traffic.dropped, 0u);
  // Drops are never silent: offered = delivered + stragglers + dropped.
  EXPECT_EQ(o.traffic.delivered + o.traffic.stragglers + o.traffic.dropped,
            o.traffic.offered);
}

TEST(TrafficWorkload, ZeroByteFinsSurviveTinyClusters) {
  // 2 ranks, both client and server of each other: the FIN handshake must
  // not deadlock even when everyone finishes injecting simultaneously.
  TrafficConfig cfg = small_cfg();
  cfg.requests_per_client = 5;
  const RunOutcome o = run_workload(cfg, core::Network::quadrics, 2);
  EXPECT_EQ(o.traffic.delivered + o.traffic.stragglers, o.traffic.offered);
}

TEST(TrafficWorkload, CableCutWindowDegradesElanTail) {
  // Scaled-down traffic_degraded: the four saturating flows across leaf 0's
  // up-cables on the 20-node Elan tree, with flow 1's climb cable cut for
  // the middle of the run.  The displaced flow shares a busy cable, so the
  // p99 sojourn must degrade measurably versus the clean fabric.
  TrafficConfig cfg;
  // Rate-paced arrivals isolate the fabric effect: the clean tail is flat,
  // so any queueing the cut induces surfaces directly in p99 instead of
  // drowning under Poisson burst excursions.
  cfg.arrival.kind = ArrivalKind::fixed;
  cfg.pattern.kind = PatternKind::pairs;
  cfg.pattern.flows = {{0, 16}, {1, 5}, {2, 10}, {3, 15}};
  cfg.load = 0.9;
  // Streaming-sized requests: at 64KB the wires, not the hosts, are the
  // bottleneck, so losing a cable actually hurts (1KB serving traffic is
  // host-limited and a half-idle fabric absorbs the cut on either net).
  cfg.request_bytes = 65536;
  cfg.requests_per_client = 48;
  const int nodes = 20;

  Workload clean(cfg, core::Network::quadrics, nodes);
  core::Cluster cc(core::elan_cluster(nodes));
  (void)cc.run([&clean](mpi::Mpi& m) { clean.rank_main(m); });

  // The victim is flow {1,5}'s first climb cable, named through the
  // ICSIM_FAULTS grammar (round-trips LinkRef::to_string -> parse).
  const fault::LinkRef victim = [&] {
    for (const auto& h : cc.fabric().topology().route(1, 5)) {
      if (h.kind == net::Hop::Kind::switch_to_switch &&
          h.to.level > h.from.level) {
        return fault::LinkRef::between(h.from, h.to);
      }
    }
    throw std::logic_error("flow 1->5 never climbs");
  }();
  const sim::Time horizon = clean.plan().horizon;
  core::ClusterConfig degraded_cfg = core::elan_cluster(nodes);
  degraded_cfg.faults = fault::FaultPlan::parse(
      "link " + victim.to_string() + " down@" +
      std::to_string(0.3 * horizon.to_us()) + "us:" +
      std::to_string(0.6 * horizon.to_us()) + "us");
  Workload cut(cfg, core::Network::quadrics, nodes);
  core::Cluster cd(degraded_cfg);
  (void)cd.run([&cut](mpi::Mpi& m) { cut.rank_main(m); });

  EXPECT_GT(cd.stats().chunks_rerouted, 0u);
  EXPECT_GT(cut.stats().p99_us, clean.stats().p99_us);
}

}  // namespace
}  // namespace icsim::traffic
