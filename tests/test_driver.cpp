// Sweep driver: registry ordering, thread-count determinism of the
// aggregated report, and per-point error isolation.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "driver/runner.hpp"
#include "driver/scenario.hpp"
#include "driver/sweep_main.hpp"
#include "microbench/pingpong.hpp"
#include "sim/engine.hpp"

namespace icsim::driver {
namespace {

// A point with a real (if tiny) event stream, so digests are nonzero and
// order-sensitive.
PointResult engine_point(int n) {
  sim::Engine e;
  for (int i = 0; i < n; ++i) {
    e.schedule_at(sim::Time::us(i + 1), [] {});
  }
  e.run();
  PointResult r;
  r.events = e.events_processed();
  r.digest = e.event_digest();
  r.add("n", n, 0);
  r.add("events", static_cast<double>(r.events), 0);
  return r;
}

// A point that runs the rendezvous path end to end: a 64 kB ping-pong on a
// fresh two-node InfiniBand cluster exercises the registration cache, which
// historically was the thread-count-dependent component (it keyed on host
// heap addresses; see ib/reg_cache.hpp).
PointResult rendezvous_point() {
  microbench::PingPongOptions opt;
  opt.sizes = {64 * 1024};
  opt.repetitions = 4;
  opt.warmup = 1;
  core::Cluster::RunStats st;
  opt.stats = &st;
  const auto pts = microbench::run_pingpong(core::ib_cluster(2), opt);
  PointResult r;
  r.events = st.events_processed;
  r.digest = st.event_digest;
  r.add("us", pts.at(0).latency_us, 3);
  return r;
}

Registry make_registry() {
  Registry reg;
  reg.group("alpha", "Alpha group");
  for (int n : {5, 9, 13}) {
    reg.add("alpha", "n" + std::to_string(n), [n] { return engine_point(n); });
  }
  reg.group("alpha").finalize = [](std::vector<PointResult>& pts) {
    double total = 0.0;
    for (auto& p : pts) {
      total += p.value("events");
      p.add("share", p.value("events") / 27.0, 3);
    }
    return std::vector<std::string>{"total events " + std::to_string(total)};
  };
  reg.group("rndv", "Rendezvous path");
  for (int i = 0; i < 4; ++i) {
    reg.add("rndv", "pp" + std::to_string(i), [] { return rendezvous_point(); });
  }
  return reg;
}

TEST(Registry, PreservesRegistrationOrderAndSelectsByGroup) {
  const Registry reg = make_registry();
  ASSERT_EQ(reg.groups().size(), 2u);
  EXPECT_EQ(reg.groups()[0].name, "alpha");
  EXPECT_EQ(reg.groups()[1].name, "rndv");
  ASSERT_EQ(reg.scenarios().size(), 7u);
  EXPECT_EQ(reg.scenarios()[0].name, "n5");
  EXPECT_EQ(reg.scenarios()[3].name, "pp0");

  const auto idx = reg.select({"rndv"});
  ASSERT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx[0], 3u);
  EXPECT_THROW((void)reg.select({"nope"}), std::invalid_argument);
}

TEST(Runner, ReportIsByteIdenticalAcrossThreadCounts) {
  const Registry reg = make_registry();
  SweepOptions one;
  one.jobs = 1;
  SweepOptions eight;
  eight.jobs = 8;
  const SweepReport a = run_sweep(reg, {}, one);
  const SweepReport b = run_sweep(reg, {}, eight);

  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    ASSERT_EQ(a.groups[g].points.size(), b.groups[g].points.size());
    for (std::size_t p = 0; p < a.groups[g].points.size(); ++p) {
      EXPECT_EQ(a.groups[g].points[p].digest, b.groups[g].points[p].digest)
          << a.groups[g].name << "/" << a.groups[g].point_names[p];
      EXPECT_EQ(a.groups[g].points[p].events, b.groups[g].points[p].events);
    }
    EXPECT_EQ(a.groups[g].digest, b.groups[g].digest);
    EXPECT_EQ(a.groups[g].summary, b.groups[g].summary);
  }
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(Runner, FinalizeRunsOnceInRegistryOrder) {
  const Registry reg = make_registry();
  SweepOptions opt;
  opt.jobs = 4;
  const SweepReport r = run_sweep(reg, {"alpha"}, opt);
  ASSERT_EQ(r.groups.size(), 1u);
  const GroupReport& g = r.groups[0];
  ASSERT_EQ(g.points.size(), 3u);
  // 5 + 9 + 13 scheduled events.
  ASSERT_EQ(g.summary.size(), 1u);
  EXPECT_EQ(g.summary[0].rfind("total events 27", 0), 0u);
  // finalize-appended metric present on every point.
  for (const auto& p : g.points) {
    EXPECT_NE(p.find("share"), nullptr);
  }
}

TEST(Runner, ThrowingScenarioIsReportedWithoutPoisoningTheBatch) {
  Registry reg;
  reg.group("mix", "Error isolation");
  reg.add("mix", "ok0", [] { return engine_point(3); });
  reg.add("mix", "bad", []() -> PointResult {
    throw std::runtime_error("boom");
  });
  reg.add("mix", "ok1", [] { return engine_point(4); });

  SweepOptions opt;
  opt.jobs = 4;
  const SweepReport r = run_sweep(reg, {}, opt);
  ASSERT_EQ(r.groups.size(), 1u);
  const GroupReport& g = r.groups[0];
  ASSERT_EQ(g.points.size(), 3u);
  EXPECT_TRUE(g.points[0].error.empty());
  EXPECT_EQ(g.points[1].error, "boom");
  EXPECT_TRUE(g.points[2].error.empty());
  EXPECT_EQ(g.points[0].events, 3u);
  EXPECT_EQ(g.points[2].events, 4u);
  EXPECT_EQ(r.total_errors(), 1u);
  EXPECT_FALSE(r.ok());
  // Serializations still produced, and deterministically so.
  EXPECT_EQ(r.to_json(), run_sweep(reg, {}, SweepOptions{}).to_json());
}

// CLI-level behavior of sweep_main, called directly with fake argv.
int run_cli(const Registry& reg, std::vector<std::string> args) {
  std::vector<char*> argv;
  args.insert(args.begin(), "icsim_sweep");
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return sweep_main(reg, static_cast<int>(argv.size()), argv.data());
}

TEST(SweepCli, UnknownGroupIsAHardErrorListingValidGroups) {
  const Registry reg = make_registry();
  ::testing::internal::CaptureStderr();
  const int rc = run_cli(reg, {"--quiet", "no_such_group"});
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.find("unknown scenario group 'no_such_group'"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("alpha"), std::string::npos) << err;
  EXPECT_NE(err.find("rndv"), std::string::npos) << err;
}

TEST(SweepCli, ListPrintsEveryGroupWithPointCountsAndExitsZero) {
  const Registry reg = make_registry();
  ::testing::internal::CaptureStdout();
  const int rc = run_cli(reg, {"--list"});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  // Every group appears, in registration order, with its point count.
  const auto alpha = out.find("alpha");
  const auto rndv = out.find("rndv");
  ASSERT_NE(alpha, std::string::npos) << out;
  ASSERT_NE(rndv, std::string::npos) << out;
  EXPECT_LT(alpha, rndv);
  EXPECT_NE(out.find("3 points"), std::string::npos) << out;
  EXPECT_NE(out.find("4 points"), std::string::npos) << out;
  EXPECT_NE(out.find("Alpha group"), std::string::npos) << out;
  // Listing must not run any scenario: --list with an unknown group name
  // still exits 0 because selection never happens.
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(run_cli(reg, {"--list", "no_such_group"}), 0);
  (void)::testing::internal::GetCapturedStdout();
}

TEST(SweepCli, OutInfersFormatFromExtension) {
  const Registry reg = make_registry();
  const std::string base = ::testing::TempDir() + "icsim_sweep_out";
  const std::string json_path = base + ".json";
  const std::string csv_path = base + ".csv";
  std::filesystem::remove(json_path);
  std::filesystem::remove(csv_path);
  EXPECT_EQ(run_cli(reg, {"--quiet", "--out", json_path, "alpha"}), 0);
  EXPECT_EQ(run_cli(reg, {"--quiet", "--out", csv_path, "alpha"}), 0);
  // --out matches the explicit --json/--csv flags byte for byte.
  const std::string json_ref = base + ".ref.json";
  const std::string csv_ref = base + ".ref.csv";
  EXPECT_EQ(run_cli(reg, {"--quiet", "--json", json_ref, "alpha"}), 0);
  EXPECT_EQ(run_cli(reg, {"--quiet", "--csv", csv_ref, "alpha"}), 0);
  const auto slurp = [](const std::string& p) {
    std::ifstream f(p);
    return std::string(std::istreambuf_iterator<char>(f), {});
  };
  EXPECT_FALSE(slurp(json_path).empty());
  EXPECT_EQ(slurp(json_path), slurp(json_ref));
  EXPECT_EQ(slurp(csv_path), slurp(csv_ref));
  EXPECT_NE(slurp(json_path).find("\"groups\""), std::string::npos);
}

TEST(SweepCli, OutWithoutRecognizedExtensionFails) {
  const Registry reg = make_registry();
  ::testing::internal::CaptureStderr();
  const int rc = run_cli(reg, {"--quiet", "--out", "report.txt", "alpha"});
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.find(".json or .csv"), std::string::npos) << err;
}

}  // namespace
}  // namespace icsim::driver
