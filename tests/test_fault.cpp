// Fault-injection subsystem: plan parsing, injector scheduling against a
// live fabric, deterministic corruption draws, IB RC retry/backoff and
// exhaustion, Elan-4 hardware link retry, degraded-fabric rerouting, and the
// transport watchdog that converts lost messages into counted errors.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/cluster.hpp"
#include "elan/tports.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "ib/hca.hpp"
#include "net/fabric.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"

namespace icsim::fault {
namespace {

// ---------------------------------------------------------------- parsing

TEST(FaultPlanParse, FullGrammar) {
  const auto p = FaultPlan::parse(
      "ber=1e-7; seed=42; watchdog=10ms; link s1.0-2.0 down@50us:150us; "
      "link n3 ber=1e-5; link n5 down@2ms; stall 2@20us+5us");
  EXPECT_DOUBLE_EQ(p.ber, 1e-7);
  EXPECT_EQ(p.seed, 42u);
  EXPECT_EQ(p.watchdog, sim::Time::ms(10));
  ASSERT_EQ(p.link_windows.size(), 2u);
  EXPECT_EQ(p.link_windows[0].link.kind, LinkRef::Kind::switch_pair);
  EXPECT_EQ(p.link_windows[0].link.a, (net::SwitchCoord{1, 0}));
  EXPECT_EQ(p.link_windows[0].link.b, (net::SwitchCoord{2, 0}));
  EXPECT_EQ(p.link_windows[0].down, sim::Time::us(50));
  EXPECT_EQ(p.link_windows[0].up, sim::Time::us(150));
  EXPECT_EQ(p.link_windows[1].link.kind, LinkRef::Kind::node);
  EXPECT_EQ(p.link_windows[1].link.node, 5);
  EXPECT_LE(p.link_windows[1].up, p.link_windows[1].down);  // down forever
  ASSERT_EQ(p.link_ber.size(), 1u);
  EXPECT_EQ(p.link_ber[0].link.node, 3);
  EXPECT_DOUBLE_EQ(p.link_ber[0].ber, 1e-5);
  ASSERT_EQ(p.stalls.size(), 1u);
  EXPECT_EQ(p.stalls[0].node, 2);
  EXPECT_EQ(p.stalls[0].start, sim::Time::us(20));
  EXPECT_EQ(p.stalls[0].duration, sim::Time::us(5));
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlanParse, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse(" ; ;").empty());
}

TEST(FaultPlanParse, MalformedSpecsThrow) {
  const char* bad[] = {
      "bogus=1",                      // unknown clause
      "ber=2",                        // ber out of [0,1)
      "ber=-1e-9",                    //
      "ber=abc",                      // not a number
      "seed=xyz",                     //
      "watchdog=10",                  // time without unit
      "watchdog=10furlongs",          // unknown unit
      "link",                         // missing link name
      "link q3 down@1us",             // bad link syntax
      "link n1 down",                 // missing @time
      "link n1 down@5us:2us",         // up before down
      "link n1 frob@1us",             // unknown field
      "link s1.0 down@1us",           // malformed switch pair
      "stall 1",                      // missing window
      "stall 1@5us",                  // missing duration
      "stall 1@5us+0us",              // zero duration
      "stall x@5us+1us",              // bad node
  };
  for (const char* spec : bad) {
    EXPECT_THROW((void)FaultPlan::parse(spec), std::invalid_argument)
        << "accepted: " << spec;
  }
}

TEST(FaultPlan, LinkRefCovers) {
  const auto n3 = LinkRef::endpoint(3);
  net::Hop up{};
  up.kind = net::Hop::Kind::node_to_switch;
  up.node = 3;
  net::Hop down = up;
  down.kind = net::Hop::Kind::switch_to_node;
  EXPECT_TRUE(n3.covers(up));
  EXPECT_TRUE(n3.covers(down));
  up.node = 4;
  EXPECT_FALSE(n3.covers(up));

  const auto cable =
      LinkRef::between(net::SwitchCoord{0, 1}, net::SwitchCoord{1, 1});
  net::Hop s2s{};
  s2s.kind = net::Hop::Kind::switch_to_switch;
  s2s.from = {0, 1};
  s2s.to = {1, 1};
  EXPECT_TRUE(cable.covers(s2s));
  std::swap(s2s.from, s2s.to);  // undirected: reverse direction also covered
  EXPECT_TRUE(cable.covers(s2s));
  s2s.to = {0, 2};
  EXPECT_FALSE(cable.covers(s2s));
}

// --------------------------------------------------------------- injector

TEST(FaultInjectorTest, DownWindowFlipsFabricLinkState) {
  sim::Engine engine;
  net::Fabric fabric(engine, net::FabricConfig{}, 8);
  FaultPlan plan;
  plan.link_windows.push_back(
      {LinkRef::endpoint(0), sim::Time::us(10), sim::Time::us(20)});
  FaultInjector inj(engine, plan, /*fallback_seed=*/1);
  inj.install(fabric);

  const net::Hop hop = fabric.topology().route(0, 4).front();
  std::vector<bool> up_at;  // sampled at 5us, 15us, 25us
  for (const double t : {5.0, 15.0, 25.0}) {
    engine.post_at(sim::Time::us(t),
                   [&] { up_at.push_back(fabric.link_up(hop)); });
  }
  engine.run();
  ASSERT_EQ(up_at.size(), 3u);
  EXPECT_TRUE(up_at[0]);   // before the window
  EXPECT_FALSE(up_at[1]);  // inside it
  EXPECT_TRUE(up_at[2]);   // restored
  EXPECT_EQ(inj.link_down_events(), 1u);
  EXPECT_EQ(inj.link_up_events(), 1u);
}

TEST(FaultInjectorTest, ValidatesLinksAgainstTopology) {
  sim::Engine engine;
  net::Fabric fabric(engine, net::FabricConfig{}, 8);

  FaultPlan out_of_range;
  out_of_range.link_windows.push_back(
      {LinkRef::endpoint(99), sim::Time::us(1), sim::Time::zero()});
  FaultInjector inj1(engine, out_of_range, 1);
  EXPECT_THROW(inj1.install(fabric), std::invalid_argument);

  FaultPlan not_adjacent;  // two leaf switches are never cabled directly
  not_adjacent.link_windows.push_back(
      {LinkRef::between(net::SwitchCoord{0, 0}, net::SwitchCoord{0, 1}),
       sim::Time::us(1), sim::Time::zero()});
  FaultInjector inj2(engine, not_adjacent, 1);
  EXPECT_THROW(inj2.install(fabric), std::invalid_argument);
}

TEST(FaultInjectorTest, PerLinkBerOverridesGlobal) {
  sim::Engine engine;
  FaultPlan plan;
  plan.ber = 1e-9;
  plan.link_ber.push_back({LinkRef::endpoint(2), 1e-5});
  FaultInjector inj(engine, plan, 1);

  net::Hop hop{};
  hop.kind = net::Hop::Kind::node_to_switch;
  hop.node = 2;
  EXPECT_DOUBLE_EQ(inj.link_ber(hop), 1e-5);
  hop.node = 3;
  EXPECT_DOUBLE_EQ(inj.link_ber(hop), 1e-9);
}

TEST(FaultInjectorTest, CorruptionDrawsAreSeedDeterministic) {
  sim::Engine e1, e2, e3;
  FaultPlan plan;
  plan.ber = 1e-6;
  plan.seed = 77;
  FaultInjector a(e1, plan, 1), b(e2, plan, 2);  // fallback seeds differ
  std::vector<bool> da, db;
  for (int i = 0; i < 200; ++i) {
    da.push_back(a.draw_corruption(1e-6, 4096));
    db.push_back(b.draw_corruption(1e-6, 4096));
  }
  EXPECT_EQ(da, db);  // plan seed pins the stream
  EXPECT_EQ(a.corruption_draws(), 200u);

  plan.seed = 78;
  FaultInjector c(e3, plan, 1);
  std::vector<bool> dc;
  // High BER so draws are a coin flip, not almost-surely-false.
  for (int i = 0; i < 200; ++i) dc.push_back(c.draw_corruption(2e-5, 4096));
  EXPECT_NE(da, dc);
}

TEST(FaultInjectorTest, ExtremeBerAlwaysCorrupts) {
  sim::Engine engine;
  FaultPlan plan;
  plan.ber = 0.5;
  FaultInjector inj(engine, plan, 1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(inj.draw_corruption(0.5, 4096));
  }
}

// ------------------------------------------------------- fabric reroute

TEST(FabricFaults, SpineFailureReroutesChunks) {
  sim::Engine engine;
  net::Fabric fabric(engine, net::FabricConfig{}, 64);
  const auto& topo = fabric.topology();

  // Find the top-level hop of the default route to the far corner (full
  // climb, so the route crosses the spine).
  const auto route = topo.route(0, 63);
  net::Hop spine{};
  for (const auto& h : route) {
    if (h.kind == net::Hop::Kind::switch_to_switch &&
        h.to.level > h.from.level && h.to.level == topo.levels() - 1) {
      spine = h;
    }
  }
  ASSERT_EQ(spine.kind, net::Hop::Kind::switch_to_switch);

  fabric.set_switch_link_state(spine.from, spine.to, false);
  std::vector<net::DeliveryStatus> statuses;
  (void)fabric.inject(0, 63, 4096,
                      [&](net::DeliveryStatus s) { statuses.push_back(s); });
  engine.run();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0], net::DeliveryStatus::delivered);
  EXPECT_EQ(fabric.chunks_rerouted(), 1u);
  EXPECT_EQ(fabric.chunks_dropped_link_down(), 0u);

  // Restored: the default route works again, no further rerouting.
  fabric.set_switch_link_state(spine.from, spine.to, true);
  (void)fabric.inject(0, 63, 4096,
                      [&](net::DeliveryStatus s) { statuses.push_back(s); });
  engine.run();
  ASSERT_EQ(statuses.size(), 2u);
  EXPECT_EQ(statuses[1], net::DeliveryStatus::delivered);
  EXPECT_EQ(fabric.chunks_rerouted(), 1u);
}

TEST(FabricFaults, DownedEndpointDropsAtInjection) {
  sim::Engine engine;
  net::Fabric fabric(engine, net::FabricConfig{}, 16);
  fabric.set_node_link_state(9, false);
  std::vector<net::DeliveryStatus> statuses;
  (void)fabric.inject(0, 9, 2048,
                      [&](net::DeliveryStatus s) { statuses.push_back(s); });
  engine.run();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_EQ(statuses[0], net::DeliveryStatus::link_down);
  EXPECT_EQ(fabric.chunks_no_route(), 1u);
  EXPECT_EQ(fabric.chunks_dropped_link_down(), 1u);
}

TEST(FabricFaults, RejectsNonAdjacentSwitchPair) {
  sim::Engine engine;
  net::Fabric fabric(engine, net::FabricConfig{}, 16);
  EXPECT_THROW(
      fabric.set_switch_link_state(net::SwitchCoord{0, 0},
                                   net::SwitchCoord{2, 3}, false),
      std::invalid_argument);
}

// ----------------------------------------------------------- IB RC retry

class IbRetryFixture : public ::testing::Test {
 protected:
  IbRetryFixture()
      : fabric_(engine_, net::FabricConfig{}, 4),
        node0_(engine_, 0, node::NodeConfig{}),
        node1_(engine_, 1, node::NodeConfig{}),
        hca0_(engine_, node0_, &fabric_, ib::HcaConfig{}),
        hca1_(engine_, node1_, &fabric_, ib::HcaConfig{}) {}

  sim::Engine engine_;
  net::Fabric fabric_;
  node::Node node0_, node1_;
  ib::Hca hca0_, hca1_;
};

TEST_F(IbRetryFixture, TransientLinkDownRecoversViaRetry) {
  // Destination endpoint cable is down until 50us: the first transmission
  // is lost, the RC timer retransmits with backoff until the link is back.
  FaultPlan plan;
  plan.link_windows.push_back(
      {LinkRef::endpoint(1), sim::Time::zero(), sim::Time::us(50)});
  FaultInjector inj(engine_, plan, 1);
  inj.install(fabric_);

  bool delivered = false;
  sim::Time when;
  hca1_.attach(1, [&](const ib::Delivery& d) {
    delivered = true;
    when = engine_.now();
    EXPECT_EQ(d.bytes, 4096u);
  });
  (void)hca0_.connect(0, &hca1_, 1);
  hca0_.rdma_write(0, hca1_, 1, 4096, nullptr, nullptr);
  engine_.run();
  EXPECT_TRUE(delivered);
  EXPECT_GE(when, sim::Time::us(50));  // only after the link came back
  EXPECT_GE(hca0_.rc_retries(), 2u);   // 20us + 40us backoff, then success
  EXPECT_EQ(hca0_.rc_retry_exhausted(), 0u);
  EXPECT_GE(hca0_.retransmitted_bytes(), 2u * 4096u);
}

TEST_F(IbRetryFixture, PermanentLinkDownExhaustsRetryBudget) {
  FaultPlan plan;  // down forever
  plan.link_windows.push_back(
      {LinkRef::endpoint(1), sim::Time::zero(), sim::Time::zero()});
  FaultInjector inj(engine_, plan, 1);
  inj.install(fabric_);

  bool delivered = false;
  std::vector<int> failed_eps;
  hca1_.attach(1, [&](const ib::Delivery&) { delivered = true; });
  hca0_.attach_error(0, [&](const ib::Delivery& d) {
    failed_eps.push_back(d.src_ep);
  });
  (void)hca0_.connect(0, &hca1_, 1);
  hca0_.rdma_write(0, hca1_, 1, 1024, nullptr, nullptr);
  engine_.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(hca0_.rc_retries(),
            static_cast<std::uint64_t>(ib::HcaConfig{}.rc_retry_limit));
  EXPECT_EQ(hca0_.rc_retry_exhausted(), 1u);
  ASSERT_EQ(failed_eps.size(), 1u);
  EXPECT_EQ(failed_eps[0], 0);
  // Exponential backoff: exhaustion takes sum(timeout * 2^i) ~ 2.5ms.
  EXPECT_GT(engine_.now(), sim::Time::ms(2));
}

// ------------------------------------------------------- Elan link retry

class ElanRetryFixture : public ::testing::Test {
 protected:
  ElanRetryFixture()
      : fabric_(engine_, net::FabricConfig{}, 4),
        node0_(engine_, 0, node::NodeConfig{}),
        node1_(engine_, 1, node::NodeConfig{}),
        nic0_(engine_, node0_, &fabric_, elan::ElanConfig{}),
        nic1_(engine_, node1_, &fabric_, elan::ElanConfig{}) {
    world_.nic_of_rank = {&nic0_, &nic1_};
    nic0_.set_world(&world_);
    nic1_.set_world(&world_);
    nic0_.attach_rank(0);
    nic1_.attach_rank(1);
  }

  sim::Engine engine_;
  net::Fabric fabric_;
  node::Node node0_, node1_;
  elan::ElanNic nic0_, nic1_;
  elan::ElanWorld world_;
};

TEST_F(ElanRetryFixture, HardwareLinkRetryRidesOutShortOutage) {
  // 5us outage vs 0.5us retry interval: ~10 link-level retransmissions,
  // well inside the budget of 15, no host involvement.
  FaultPlan plan;
  plan.link_windows.push_back(
      {LinkRef::endpoint(1), sim::Time::zero(), sim::Time::us(5)});
  FaultInjector inj(engine_, plan, 1);
  inj.install(fabric_);

  elan::RxStatus seen;
  bool rx_done = false;
  nic1_.rx(1, 0, 7, 0, [&](const elan::RxStatus& st) {
    rx_done = true;
    seen = st;
  });
  auto payload = std::make_shared<std::vector<std::byte>>(256);
  nic0_.tx(0, 1, 7, 0, payload, 256, nullptr);
  engine_.run();
  EXPECT_TRUE(rx_done);
  EXPECT_EQ(seen.bytes, 256u);
  EXPECT_GE(nic0_.link_retries(), 1u);
  EXPECT_LE(nic0_.link_retries(),
            static_cast<std::uint64_t>(elan::ElanConfig{}.link_retry_limit));
  EXPECT_EQ(nic0_.link_retry_exhausted(), 0u);
}

TEST_F(ElanRetryFixture, PermanentOutageExhaustsLinkRetry) {
  FaultPlan plan;  // down forever
  plan.link_windows.push_back(
      {LinkRef::endpoint(1), sim::Time::zero(), sim::Time::zero()});
  FaultInjector inj(engine_, plan, 1);
  inj.install(fabric_);

  bool rx_done = false;
  nic1_.rx(1, 0, 7, 0, [&](const elan::RxStatus&) { rx_done = true; });
  auto payload = std::make_shared<std::vector<std::byte>>(256);
  nic0_.tx(0, 1, 7, 0, payload, 256, nullptr);
  engine_.run();
  EXPECT_FALSE(rx_done);
  EXPECT_EQ(nic0_.link_retries(),
            static_cast<std::uint64_t>(elan::ElanConfig{}.link_retry_limit));
  EXPECT_GE(nic0_.link_retry_exhausted(), 1u);
}

// -------------------------------------------------- cluster integration

TEST(ClusterFaults, BerRunDeliversEverythingWithRetries) {
  // A lossy fabric (high BER so a short test sees drops) must still deliver
  // every message, with the recovery visible in the counters.
  for (const auto net : {core::Network::infiniband, core::Network::quadrics}) {
    core::ClusterConfig cc = net == core::Network::infiniband
                                 ? core::ib_cluster(2)
                                 : core::elan_cluster(2);
    cc.faults.ber = 1e-6;
    cc.faults.seed = 9;
    core::Cluster cluster(cc);
    cluster.run([&](mpi::Mpi& mpi) {
      std::vector<std::byte> buf(32768, std::byte{5});
      for (int i = 0; i < 20; ++i) {
        if (mpi.rank() == 0) {
          mpi.send(buf.data(), buf.size(), 1, i);
        } else {
          (void)mpi.recv(buf.data(), buf.size(), 0, i);
        }
      }
    });
    const auto st = cluster.stats();
    EXPECT_GT(st.chunks_corrupted, 0u) << core::to_string(net);
    if (net == core::Network::infiniband) {
      EXPECT_GE(st.rc_retries, st.chunks_corrupted);
      EXPECT_EQ(st.rc_retry_exhausted, 0u);
    } else {
      EXPECT_GE(st.elan_link_retries, st.chunks_corrupted);
      EXPECT_EQ(st.elan_link_retry_exhausted, 0u);
    }
    EXPECT_EQ(st.watchdog_timeouts, 0u);
  }
}

TEST(ClusterFaults, WatchdogConvertsLostMessagesIntoCountedErrors) {
  // Node 1's cable never comes back and the retry budget runs out; without
  // the watchdog the receiving fiber would be stuck forever and run() would
  // report a deadlock.  With it, the wait fails and is counted.
  for (const auto net : {core::Network::infiniband, core::Network::quadrics}) {
    core::ClusterConfig cc = net == core::Network::infiniband
                                 ? core::ib_cluster(2)
                                 : core::elan_cluster(2);
    cc.faults = fault::FaultPlan::parse("link n1 down@1us; watchdog=5ms");
    core::Cluster cluster(cc);
    cluster.run([&](mpi::Mpi& mpi) {
      std::vector<std::byte> buf(256, std::byte{1});
      if (mpi.rank() == 0) {
        mpi.send(buf.data(), buf.size(), 1, 0);
      } else {
        (void)mpi.recv(buf.data(), buf.size(), 0, 0);
      }
    });
    const auto st = cluster.stats();
    EXPECT_GE(st.watchdog_timeouts, 1u) << core::to_string(net);
    if (net == core::Network::infiniband) {
      EXPECT_GE(st.rc_retry_exhausted, 1u);
    } else {
      EXPECT_GE(st.elan_link_retry_exhausted, 1u);
    }
  }
}

TEST(ClusterFaults, SpecStringViaConfigMatchesProgrammaticPlan) {
  auto run_once = [](const FaultPlan& plan) {
    core::ClusterConfig cc = core::ib_cluster(2);
    cc.faults = plan;
    core::Cluster cluster(cc);
    cluster.run([&](mpi::Mpi& mpi) {
      std::vector<std::byte> buf(8192, std::byte{2});
      if (mpi.rank() == 0) {
        mpi.send(buf.data(), buf.size(), 1, 0);
      } else {
        (void)mpi.recv(buf.data(), buf.size(), 0, 0);
      }
    });
    return cluster.engine().now();
  };
  FaultPlan programmatic;
  programmatic.ber = 5e-7;
  programmatic.seed = 123;
  EXPECT_EQ(run_once(programmatic), run_once(FaultPlan::parse("ber=5e-7; seed=123")));
}

}  // namespace
}  // namespace icsim::fault
