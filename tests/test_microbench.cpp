// Micro-benchmark harness unit tests: size ladders, result plausibility
// and internal consistency.

#include <gtest/gtest.h>

#include "microbench/beff.hpp"
#include "microbench/pingpong.hpp"

namespace icsim::microbench {
namespace {

TEST(Pallas, SizeLadder) {
  const auto s = pallas_sizes(16);
  EXPECT_EQ(s, (std::vector<std::size_t>{0, 1, 2, 4, 8, 16}));
}

TEST(Beff, TwentyOneLengths) {
  const auto l = beff_lengths(1 << 20);
  ASSERT_EQ(l.size(), 21u);
  EXPECT_EQ(l.front(), 1u);
  EXPECT_EQ(l.back(), 1u << 20);
  for (std::size_t i = 1; i < l.size(); ++i) EXPECT_GT(l[i], l[i - 1]);
}

TEST(PingPong, NeedsTwoRanks) {
  PingPongOptions o;
  o.sizes = {8};
  EXPECT_THROW((void)run_pingpong(core::elan_cluster(1), o),
               std::invalid_argument);
}

TEST(PingPong, LatencyMonotoneInSizeRoughly) {
  PingPongOptions o;
  o.sizes = {64, 4096, 262144};
  o.repetitions = 20;
  o.warmup = 2;
  const auto r = run_pingpong(core::elan_cluster(2), o);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_LT(r[0].latency_us, r[1].latency_us);
  EXPECT_LT(r[1].latency_us, r[2].latency_us);
}

TEST(PingPong, BandwidthConsistentWithLatency) {
  PingPongOptions o;
  o.sizes = {65536};
  o.repetitions = 10;
  o.warmup = 2;
  const auto r = run_pingpong(core::ib_cluster(2), o);
  EXPECT_NEAR(r[0].bandwidth_mbs,
              65536.0 / r[0].latency_us, 1.0);
}

TEST(Streaming, BeatsPingPongBandwidthAtSmallSizes) {
  PingPongOptions p;
  p.sizes = {128};
  p.repetitions = 20;
  p.warmup = 2;
  StreamingOptions s;
  s.sizes = {128};
  s.batches = 6;
  s.warmup_batches = 1;
  const auto pp = run_pingpong(core::elan_cluster(2), p);
  const auto st = run_streaming(core::elan_cluster(2), s);
  EXPECT_GT(st[0].bandwidth_mbs, pp[0].bandwidth_mbs * 2.0);
}

TEST(Streaming, MessageRateTimesBytesIsBandwidth) {
  StreamingOptions s;
  s.sizes = {1024};
  s.batches = 5;
  s.warmup_batches = 1;
  const auto st = run_streaming(core::ib_cluster(2), s);
  EXPECT_NEAR(st[0].bandwidth_mbs, st[0].msg_rate_per_sec * 1024 / 1e6, 0.01);
}

TEST(Beff, RunsOnSmallJob) {
  BeffOptions o;
  o.lmax = 1 << 14;
  o.repetitions = 1;
  o.random_patterns = 1;
  const auto r = run_beff(core::elan_cluster(4), o);
  EXPECT_GT(r.beff_mbs, 0.0);
  EXPECT_NEAR(r.beff_per_process_mbs * 4, r.beff_mbs, 1e-9);
  EXPECT_GE(r.per_pattern_mbs.size(), 2u);
}

TEST(Beff, DeterministicAcrossRuns) {
  BeffOptions o;
  o.lmax = 1 << 12;
  o.repetitions = 1;
  o.random_patterns = 1;
  const auto a = run_beff(core::elan_cluster(4), o);
  const auto b = run_beff(core::elan_cluster(4), o);
  EXPECT_DOUBLE_EQ(a.beff_mbs, b.beff_mbs);
}

}  // namespace
}  // namespace icsim::microbench
