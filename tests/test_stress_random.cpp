// Randomized traffic stress: every rank fires a seeded random mix of
// sends/receives (sizes spanning all protocol paths, random tags, random
// ordering) at random peers; pairwise sequence numbers embedded in the
// payloads verify per-pair ordering and integrity.  Parameterized over
// network x seed, and the simulated end time must be bit-stable per seed
// (full-stack determinism).

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/cluster.hpp"
#include "sim/rng.hpp"

namespace icsim {
namespace {

using core::Network;

struct Plan {
  // messages[src][dst] -> list of payload sizes, in send order.
  std::vector<std::vector<std::vector<std::uint32_t>>> messages;
};

Plan make_plan(int ranks, std::uint64_t seed, int msgs_per_rank) {
  sim::Rng rng(seed);
  Plan p;
  p.messages.assign(static_cast<std::size_t>(ranks),
                    std::vector<std::vector<std::uint32_t>>(
                        static_cast<std::size_t>(ranks)));
  const std::uint32_t sizes[] = {0,    8,     200,   1024,  1025,
                                 4096, 16384, 16385, 40000, 120000};
  for (int s = 0; s < ranks; ++s) {
    for (int m = 0; m < msgs_per_rank; ++m) {
      int d = rng.uniform_int(0, ranks - 1);
      if (d == s) d = (d + 1) % ranks;  // no self-sends in this plan
      if (ranks == 1) continue;
      p.messages[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)]
          .push_back(sizes[rng.uniform_u64(0, 9)]);
    }
  }
  return p;
}

class RandomTraffic
    : public ::testing::TestWithParam<std::tuple<Network, std::uint64_t>> {};

TEST_P(RandomTraffic, AllMessagesArriveIntactAndInOrder) {
  const auto [net, seed] = GetParam();
  constexpr int kRanks = 6;
  const Plan plan = make_plan(kRanks, seed, 25);

  core::ClusterConfig cc = net == Network::infiniband ? core::ib_cluster(3, 2)
                           : net == Network::quadrics
                               ? core::elan_cluster(3, 2)
                               : core::myrinet_cluster(3, 2);
  core::Cluster cluster(cc);

  cluster.run([&](mpi::Mpi& mpi) {
    const auto me = static_cast<std::size_t>(mpi.rank());

    // Post all receives first (wildcard source, fixed per-source ordering
    // verified via embedded sequence numbers).
    std::size_t expected = 0;
    for (int s = 0; s < kRanks; ++s) {
      expected += plan.messages[static_cast<std::size_t>(s)][me].size();
    }

    // Sender side: isend everything with per-destination sequence stamps.
    // (reserve: rendezvous reads the user buffer later, so the vector must
    // not reallocate while sends are in flight)
    std::size_t total_out = 0;
    for (int d = 0; d < kRanks; ++d) {
      total_out += plan.messages[me][static_cast<std::size_t>(d)].size();
    }
    std::vector<std::vector<std::byte>> sbufs;
    sbufs.reserve(total_out);
    std::vector<mpi::Request> sends;
    std::vector<std::size_t> seq(static_cast<std::size_t>(kRanks), 0);
    for (int d = 0; d < kRanks; ++d) {
      for (const std::uint32_t bytes : plan.messages[me][static_cast<std::size_t>(d)]) {
        std::vector<std::byte> buf(bytes + 16);
        const std::uint64_t stamp = seq[static_cast<std::size_t>(d)]++;
        std::memcpy(buf.data(), &stamp, sizeof stamp);
        const std::uint64_t sz = bytes;
        std::memcpy(buf.data() + 8, &sz, sizeof sz);
        for (std::uint32_t i = 16; i < bytes + 16; ++i) {
          buf[i] = static_cast<std::byte>((i * 7 + stamp) & 0xff);
        }
        sbufs.push_back(std::move(buf));
        sends.push_back(mpi.isend(sbufs.back().data(), sbufs.back().size(), d,
                                  /*tag=*/3));
      }
    }

    // Receive everything; verify per-source monotone sequence numbers and
    // payload contents.
    std::vector<std::uint64_t> next_seq(static_cast<std::size_t>(kRanks), 0);
    std::vector<std::byte> rbuf(120016 + 16);
    for (std::size_t r = 0; r < expected; ++r) {
      const auto st = mpi.recv(rbuf.data(), rbuf.size(), mpi::kAnySource, 3);
      std::uint64_t stamp = 0, sz = 0;
      std::memcpy(&stamp, rbuf.data(), sizeof stamp);
      std::memcpy(&sz, rbuf.data() + 8, sizeof sz);
      ASSERT_EQ(st.bytes, sz + 16);
      ASSERT_EQ(stamp, next_seq[static_cast<std::size_t>(st.source)]++)
          << "ordering violated from rank " << st.source;
      for (std::uint64_t i = 16; i < sz + 16; ++i) {
        ASSERT_EQ(rbuf[i], static_cast<std::byte>((i * 7 + stamp) & 0xff));
      }
    }
    mpi.waitall(sends);
  });
}

TEST_P(RandomTraffic, DeterministicEndTime) {
  const auto [net, seed] = GetParam();
  auto run_once = [net = net, seed = seed] {
    const Plan plan = make_plan(4, seed, 12);
    core::ClusterConfig cc = net == Network::infiniband ? core::ib_cluster(2, 2)
                             : net == Network::quadrics
                                 ? core::elan_cluster(2, 2)
                                 : core::myrinet_cluster(2, 2);
    core::Cluster cluster(cc);
    cluster.run([&](mpi::Mpi& mpi) {
      const auto me = static_cast<std::size_t>(mpi.rank());
      std::size_t expected = 0;
      for (int s = 0; s < 4; ++s) {
        expected += plan.messages[static_cast<std::size_t>(s)][me].size();
      }
      std::vector<std::vector<std::byte>> sbufs;
      sbufs.reserve(64);
      std::vector<mpi::Request> sends;
      for (int d = 0; d < 4; ++d) {
        for (const std::uint32_t bytes : plan.messages[me][static_cast<std::size_t>(d)]) {
          sbufs.emplace_back(bytes, std::byte{1});
          sends.push_back(
              mpi.isend(sbufs.back().data(), bytes, d, 1));
        }
      }
      std::vector<std::byte> rbuf(120000);
      for (std::size_t r = 0; r < expected; ++r) {
        (void)mpi.recv(rbuf.data(), rbuf.size(), mpi::kAnySource, 1);
      }
      mpi.waitall(sends);
    });
    return cluster.engine().now();
  };
  EXPECT_EQ(run_once(), run_once());
}

// Identical seed + identical FaultPlan => bit-identical end time AND
// bit-identical fault/retry counters across two runs (the corruption draws
// come from their own seeded stream, so the whole degraded run reproduces).
TEST_P(RandomTraffic, FaultPlanDeterministicEndTime) {
  const auto [net, seed] = GetParam();
  auto run_once = [net = net, seed = seed] {
    const Plan plan = make_plan(4, seed, 12);
    core::ClusterConfig cc = net == Network::infiniband ? core::ib_cluster(2, 2)
                             : net == Network::quadrics
                                 ? core::elan_cluster(2, 2)
                                 : core::myrinet_cluster(2, 2);
    cc.faults = fault::FaultPlan::parse("ber=1e-6; stall 1@30us+20us");
    core::Cluster cluster(cc);
    cluster.run([&](mpi::Mpi& mpi) {
      const auto me = static_cast<std::size_t>(mpi.rank());
      std::size_t expected = 0;
      for (int s = 0; s < 4; ++s) {
        expected += plan.messages[static_cast<std::size_t>(s)][me].size();
      }
      std::vector<std::vector<std::byte>> sbufs;
      sbufs.reserve(64);
      std::vector<mpi::Request> sends;
      for (int d = 0; d < 4; ++d) {
        for (const std::uint32_t bytes : plan.messages[me][static_cast<std::size_t>(d)]) {
          sbufs.emplace_back(bytes, std::byte{1});
          sends.push_back(mpi.isend(sbufs.back().data(), bytes, d, 1));
        }
      }
      std::vector<std::byte> rbuf(120000);
      for (std::size_t r = 0; r < expected; ++r) {
        (void)mpi.recv(rbuf.data(), rbuf.size(), mpi::kAnySource, 1);
      }
      mpi.waitall(sends);
    });
    const auto st = cluster.stats();
    return std::make_tuple(cluster.engine().now(), st.chunks_corrupted,
                           st.rc_retries, st.elan_link_retries,
                           st.events_processed);
  };
  const auto first = run_once();
  EXPECT_EQ(first, run_once());
}

// Faults compiled in but disabled: a plan whose only content is a zero-BER
// override (hooks installed, injector live, zero corruption probability)
// plus an ample watchdog must reproduce the fault-free run bit-identically.
TEST_P(RandomTraffic, DisabledFaultPlanIsBitIdentical) {
  const auto [net, seed] = GetParam();
  auto run_once = [net = net, seed = seed](bool with_plan) {
    const Plan plan = make_plan(4, seed, 12);
    core::ClusterConfig cc = net == Network::infiniband ? core::ib_cluster(2, 2)
                             : net == Network::quadrics
                                 ? core::elan_cluster(2, 2)
                                 : core::myrinet_cluster(2, 2);
    if (with_plan) {
      cc.faults = fault::FaultPlan::parse("link n0 ber=0; watchdog=500ms");
    }
    core::Cluster cluster(cc);
    cluster.run([&](mpi::Mpi& mpi) {
      const auto me = static_cast<std::size_t>(mpi.rank());
      std::size_t expected = 0;
      for (int s = 0; s < 4; ++s) {
        expected += plan.messages[static_cast<std::size_t>(s)][me].size();
      }
      std::vector<std::vector<std::byte>> sbufs;
      sbufs.reserve(64);
      std::vector<mpi::Request> sends;
      for (int d = 0; d < 4; ++d) {
        for (const std::uint32_t bytes : plan.messages[me][static_cast<std::size_t>(d)]) {
          sbufs.emplace_back(bytes, std::byte{1});
          sends.push_back(mpi.isend(sbufs.back().data(), bytes, d, 1));
        }
      }
      std::vector<std::byte> rbuf(120000);
      for (std::size_t r = 0; r < expected; ++r) {
        (void)mpi.recv(rbuf.data(), rbuf.size(), mpi::kAnySource, 1);
      }
      mpi.waitall(sends);
    });
    const auto st = cluster.stats();
    EXPECT_EQ(st.chunks_corrupted, 0u);
    EXPECT_EQ(st.watchdog_timeouts, 0u);
    return cluster.engine().now();
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomTraffic,
    ::testing::Combine(::testing::Values(Network::infiniband,
                                         Network::quadrics,
                                         Network::myrinet),
                       ::testing::Values(11u, 202u, 3003u, 40004u)),
    [](const auto& info) {
      const char* n = std::get<0>(info.param) == Network::infiniband ? "IB"
                      : std::get<0>(info.param) == Network::quadrics
                          ? "Elan4"
                          : "Myri";
      return std::string(n) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace icsim
