// FifoResource / BandwidthResource: busy-until FIFO semantics and accounting.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"

namespace icsim::sim {
namespace {

TEST(FifoResource, IdleRequestServedImmediately) {
  Engine e;
  FifoResource r(e, "r");
  Time done = Time::zero();
  r.acquire(Time::us(3), [&] { done = e.now(); });
  e.run();
  EXPECT_EQ(done, Time::us(3));
}

TEST(FifoResource, BackToBackRequestsQueueFifo) {
  Engine e;
  FifoResource r(e, "r");
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    r.acquire(Time::us(2), [&] { completions.push_back(e.now().to_us()); });
  }
  e.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 2.0);
  EXPECT_DOUBLE_EQ(completions[1], 4.0);
  EXPECT_DOUBLE_EQ(completions[2], 6.0);
}

TEST(FifoResource, DrainsBetweenBursts) {
  Engine e;
  FifoResource r(e, "r");
  (void)r.acquire(Time::us(1));
  e.run();
  // Resource idle again: a request at t=10 finishes at t=11, not t=2.
  Time done = Time::zero();
  e.schedule_at(Time::us(10), [&] {
    r.acquire(Time::us(1), [&] { done = e.now(); });
  });
  e.run();
  EXPECT_EQ(done, Time::us(11));
}

TEST(FifoResource, ReturnsCompletionTime) {
  Engine e;
  FifoResource r(e, "r");
  EXPECT_EQ(r.acquire(Time::us(5)), Time::us(5));
  EXPECT_EQ(r.acquire(Time::us(5)), Time::us(10));
  EXPECT_TRUE(r.busy());
}

TEST(FifoResource, TracksUtilization) {
  Engine e;
  FifoResource r(e, "r");
  (void)r.acquire(Time::us(3));
  (void)r.acquire(Time::us(4));
  EXPECT_EQ(r.requests(), 2u);
  EXPECT_EQ(r.busy_time(), Time::us(7));
}

TEST(BandwidthResource, ServiceTimeFromBytes) {
  Engine e;
  // 1 GB/s, no overhead: 1000 bytes -> 1 us.
  BandwidthResource r(e, "bus", Bandwidth::gb_per_sec(1.0));
  Time done = Time::zero();
  r.transfer(1000, [&] { done = e.now(); });
  e.run();
  EXPECT_EQ(done, Time::us(1));
}

TEST(BandwidthResource, PerRequestOverheadApplies) {
  Engine e;
  BandwidthResource r(e, "bus", Bandwidth::gb_per_sec(1.0), Time::ns(250));
  const Time t1 = r.transfer(1000);
  EXPECT_EQ(t1, Time::us(1) + Time::ns(250));
}

TEST(BandwidthResource, ContendingTransfersSerialize) {
  Engine e;
  BandwidthResource r(e, "bus", Bandwidth::mb_per_sec(1000.0));
  std::vector<double> done;
  // Two 1 MB DMA transfers share the bus: second finishes at 2 ms.
  r.transfer(1'000'000, [&] { done.push_back(e.now().to_ms()); });
  r.transfer(1'000'000, [&] { done.push_back(e.now().to_ms()); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(7);
  bool all_equal = true;
  bool any_differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.uniform_u64(0, 1'000'000);
    const auto vb = b.uniform_u64(0, 1'000'000);
    const auto vc = c.uniform_u64(0, 1'000'000);
    all_equal = all_equal && (va == vb);
    any_differs_from_c = any_differs_from_c || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs_from_c);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng a2(42);
  (void)a2.uniform_u64(0, ~0ull);  // consume what fork() consumed
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (child.uniform_u64(0, 1000) != a.uniform_u64(0, 1000)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRealInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

}  // namespace
}  // namespace icsim::sim
