// FifoResource / BandwidthResource: busy-until FIFO semantics and accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"

namespace icsim::sim {
namespace {

TEST(FifoResource, IdleRequestServedImmediately) {
  Engine e;
  FifoResource r(e, "r");
  Time done = Time::zero();
  r.acquire(Time::us(3), [&] { done = e.now(); });
  e.run();
  EXPECT_EQ(done, Time::us(3));
}

TEST(FifoResource, BackToBackRequestsQueueFifo) {
  Engine e;
  FifoResource r(e, "r");
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    r.acquire(Time::us(2), [&] { completions.push_back(e.now().to_us()); });
  }
  e.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 2.0);
  EXPECT_DOUBLE_EQ(completions[1], 4.0);
  EXPECT_DOUBLE_EQ(completions[2], 6.0);
}

TEST(FifoResource, DrainsBetweenBursts) {
  Engine e;
  FifoResource r(e, "r");
  (void)r.acquire(Time::us(1));
  e.run();
  // Resource idle again: a request at t=10 finishes at t=11, not t=2.
  Time done = Time::zero();
  e.schedule_at(Time::us(10), [&] {
    r.acquire(Time::us(1), [&] { done = e.now(); });
  });
  e.run();
  EXPECT_EQ(done, Time::us(11));
}

TEST(FifoResource, ReturnsCompletionTime) {
  Engine e;
  FifoResource r(e, "r");
  EXPECT_EQ(r.acquire(Time::us(5)), Time::us(5));
  EXPECT_EQ(r.acquire(Time::us(5)), Time::us(10));
  EXPECT_TRUE(r.busy());
}

TEST(FifoResource, TracksUtilization) {
  Engine e;
  FifoResource r(e, "r");
  (void)r.acquire(Time::us(3));
  (void)r.acquire(Time::us(4));
  EXPECT_EQ(r.requests(), 2u);
  EXPECT_EQ(r.busy_time(), Time::us(7));
}

TEST(BandwidthResource, ServiceTimeFromBytes) {
  Engine e;
  // 1 GB/s, no overhead: 1000 bytes -> 1 us.
  BandwidthResource r(e, "bus", Bandwidth::gb_per_sec(1.0));
  Time done = Time::zero();
  r.transfer(1000, [&] { done = e.now(); });
  e.run();
  EXPECT_EQ(done, Time::us(1));
}

TEST(BandwidthResource, PerRequestOverheadApplies) {
  Engine e;
  BandwidthResource r(e, "bus", Bandwidth::gb_per_sec(1.0), Time::ns(250));
  const Time t1 = r.transfer(1000);
  EXPECT_EQ(t1, Time::us(1) + Time::ns(250));
}

TEST(BandwidthResource, ContendingTransfersSerialize) {
  Engine e;
  BandwidthResource r(e, "bus", Bandwidth::mb_per_sec(1000.0));
  std::vector<double> done;
  // Two 1 MB DMA transfers share the bus: second finishes at 2 ms.
  r.transfer(1'000'000, [&] { done.push_back(e.now().to_ms()); });
  r.transfer(1'000'000, [&] { done.push_back(e.now().to_ms()); });
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-9);
  EXPECT_NEAR(done[1], 2.0, 1e-9);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(7);
  bool all_equal = true;
  bool any_differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.uniform_u64(0, 1'000'000);
    const auto vb = b.uniform_u64(0, 1'000'000);
    const auto vc = c.uniform_u64(0, 1'000'000);
    all_equal = all_equal && (va == vb);
    any_differs_from_c = any_differs_from_c || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs_from_c);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng a2(42);
  (void)a2.uniform_u64(0, ~0ull);  // consume what fork() consumed
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (child.uniform_u64(0, 1000) != a.uniform_u64(0, 1000)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformRealInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, CanonicalIsPinnedAcrossPlatforms) {
  // canonical()/exponential()/pick() are specified here, not delegated to
  // implementation-defined std:: distribution algorithms, so their streams
  // are part of the determinism contract: the mt19937_64 output sequence is
  // standard-mandated, and these goldens must hold on every platform.
  Rng r(42);
  EXPECT_DOUBLE_EQ(r.canonical(), 0.75515553295453897);
  EXPECT_DOUBLE_EQ(r.canonical(), 0.63903139385469743);
  EXPECT_DOUBLE_EQ(r.canonical(), 0.7521452007480266);
  EXPECT_DOUBLE_EQ(r.canonical(), 0.13627268363243705);

  Rng e(42);
  EXPECT_DOUBLE_EQ(e.exponential(2.0), 0.70356604920607191);
  EXPECT_DOUBLE_EQ(e.exponential(2.0), 0.50948214400861369);

  Rng p(42);
  const std::size_t picks[] = {5u, 4u, 5u, 0u, 6u, 0u};
  for (const std::size_t want : picks) EXPECT_EQ(p.pick(7), want);
}

TEST(Rng, ExponentialHasTheRightMeanAndSupport) {
  Rng r(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = r.exponential(4.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.25, 0.01);  // mean = 1/rate
}

TEST(Rng, PickCoversTheFullRange) {
  Rng r(3);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[r.pick(5)];
  for (int i = 0; i < 5; ++i) EXPECT_GT(seen[i], 100);
}

TEST(Mmpp, FromAverageSolvesTheStationaryMix) {
  // avg = (1-f)*rate0 + f*rate1, rate1 = b*rate0, f = d1/(d0+d1).
  const Mmpp m = Mmpp::from_average(1000.0, 4.0, 0.2, 0.05);
  EXPECT_DOUBLE_EQ(m.config().rate0, 625.0);
  EXPECT_DOUBLE_EQ(m.config().rate1, 2500.0);
  EXPECT_DOUBLE_EQ(m.config().mean_dwell1, 0.05);
  const double f = m.config().mean_dwell1 /
                   (m.config().mean_dwell0 + m.config().mean_dwell1);
  EXPECT_NEAR(f, 0.2, 1e-12);
}

TEST(Mmpp, InterarrivalsAreSeedDeterministicAndPinned) {
  Rng a(42);
  Mmpp ma = Mmpp::from_average(1000.0, 4.0, 0.2, 0.05);
  EXPECT_DOUBLE_EQ(ma.next_interarrival(a), 0.0016303428608275639);
  EXPECT_DOUBLE_EQ(ma.next_interarrival(a), 0.00023439706567714481);
  EXPECT_DOUBLE_EQ(ma.next_interarrival(a), 0.00015806620012569152);
  // Same seed, fresh process object: the identical walk.
  Rng b(42);
  Mmpp mb = Mmpp::from_average(1000.0, 4.0, 0.2, 0.05);
  EXPECT_DOUBLE_EQ(mb.next_interarrival(b), 0.0016303428608275639);
}

TEST(Mmpp, BurstsRaiseInterarrivalVariability) {
  // Same mean rate: the MMPP's coefficient of variation must exceed the
  // plain Poisson stream's (~1), which is the whole point of the model.
  Rng pr(11), mr(11);
  Mmpp mm = Mmpp::from_average(1000.0, 8.0, 0.15, 0.02);
  auto cv = [](const std::vector<double>& v) {
    double s = 0.0, s2 = 0.0;
    for (const double x : v) {
      s += x;
      s2 += x * x;
    }
    const double n = static_cast<double>(v.size());
    const double mean = s / n;
    return std::sqrt(s2 / n - mean * mean) / mean;
  };
  std::vector<double> poisson, mmpp;
  for (int i = 0; i < 20000; ++i) {
    poisson.push_back(pr.exponential(1000.0));
    mmpp.push_back(mm.next_interarrival(mr));
  }
  EXPECT_NEAR(cv(poisson), 1.0, 0.05);
  EXPECT_GT(cv(mmpp), 1.2);
  // And the long-run mean rate still honours the requested average.
  double total = 0.0;
  for (const double g : mmpp) total += g;
  EXPECT_NEAR(20000.0 / total, 1000.0, 100.0);
}

}  // namespace
}  // namespace icsim::sim
