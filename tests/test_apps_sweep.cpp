// Sweep3D correctness: the wavefront recursion must produce identical
// physics regardless of the process decomposition and transport, the
// pipeline must not deadlock, and the fixed-size cache model must make
// small per-rank working sets cheaper per cell.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/sweep3d/sweep.hpp"
#include "core/cluster.hpp"

namespace icsim::apps::sweep {
namespace {

SweepConfig tiny() {
  SweepConfig c;
  c.nx = c.ny = 12;
  c.nz = 16;
  c.mk = 4;
  c.mmi = 2;
  c.angles_per_octant = 4;
  c.iterations = 2;
  return c;
}

SweepResult run_on(const core::ClusterConfig& cc, const SweepConfig& sc) {
  core::Cluster cluster(cc);
  SweepResult result;
  cluster.run([&](mpi::Mpi& mpi) {
    SweepResult r = run_sweep3d(mpi, sc);
    if (mpi.rank() == 0) result = r;
  });
  return result;
}

TEST(Sweep3d, FluxIsPositiveAndFinite) {
  const auto r = run_on(core::elan_cluster(1), tiny());
  EXPECT_TRUE(std::isfinite(r.flux_sum));
  EXPECT_GT(r.flux_sum, 0.0);
  EXPECT_GT(r.grind_ns, 0.0);
}

TEST(Sweep3d, CellCountMatchesGrid) {
  const SweepConfig c = tiny();
  const auto r = run_on(core::elan_cluster(1), c);
  const std::uint64_t expected = static_cast<std::uint64_t>(c.nx) * c.ny *
                                 c.nz * 8 * c.angles_per_octant *
                                 c.iterations;
  EXPECT_EQ(r.cells_swept, expected);
}

TEST(Sweep3d, DecompositionInvariance) {
  const SweepConfig c = tiny();
  const auto r1 = run_on(core::elan_cluster(1), c);
  const auto r4 = run_on(core::elan_cluster(4), c);
  const auto r9 = run_on(core::elan_cluster(9), c);
  EXPECT_NEAR(r4.flux_sum, r1.flux_sum, 1e-9 * std::abs(r1.flux_sum));
  EXPECT_NEAR(r9.flux_sum, r1.flux_sum, 1e-9 * std::abs(r1.flux_sum));
  EXPECT_EQ(r1.cells_swept, r4.cells_swept);
}

TEST(Sweep3d, TransportInvariance) {
  const SweepConfig c = tiny();
  const auto ib = run_on(core::ib_cluster(4), c);
  const auto el = run_on(core::elan_cluster(4), c);
  EXPECT_DOUBLE_EQ(ib.flux_sum, el.flux_sum);
}

TEST(Sweep3d, ScatteringIterationsChangeFlux) {
  SweepConfig one = tiny();
  one.iterations = 1;
  SweepConfig three = tiny();
  three.iterations = 3;
  const auto r1 = run_on(core::elan_cluster(1), one);
  const auto r3 = run_on(core::elan_cluster(1), three);
  // With scattering the converged flux exceeds the first sweep's.
  EXPECT_GT(r3.flux_sum, r1.flux_sum * 1.05);
}

TEST(Sweep3d, FaceTrafficOnlyWithMultipleRanks) {
  const auto r1 = run_on(core::elan_cluster(1), tiny());
  const auto r4 = run_on(core::elan_cluster(4), tiny());
  EXPECT_EQ(r1.face_bytes, 0u);
  EXPECT_GT(r4.face_bytes, 0u);
}

TEST(Sweep3d, SuperlinearCacheEffect) {
  // Per-cell grind must shrink when the per-rank working set shrinks
  // (the paper's superlinear 1 -> 4 step on the fixed-size problem).
  SweepConfig c = tiny();
  c.nx = c.ny = 40;
  c.nz = 40;
  c.cache_half_bytes = 2.0e5;  // make the effect visible at this tiny size
  const auto r1 = run_on(core::elan_cluster(1), c);
  const auto r16 = run_on(core::elan_cluster(16), c);
  EXPECT_LT(r16.grind_ns * 0.98, r1.grind_ns);
}

TEST(Sweep3d, TooManyProcessorsThrows) {
  SweepConfig c = tiny();
  c.nx = c.ny = 2;
  core::Cluster cluster(core::elan_cluster(9));
  EXPECT_THROW(cluster.run([&](mpi::Mpi& mpi) { run_sweep3d(mpi, c); }),
               std::invalid_argument);
}

TEST(Sweep3d, DeterministicAcrossRuns) {
  const auto a = run_on(core::elan_cluster(4), tiny());
  const auto b = run_on(core::elan_cluster(4), tiny());
  EXPECT_DOUBLE_EQ(a.flux_sum, b.flux_sum);
  EXPECT_DOUBLE_EQ(a.solve_seconds, b.solve_seconds);
}

}  // namespace
}  // namespace icsim::apps::sweep
