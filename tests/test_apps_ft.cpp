// FT kernel: FFT correctness (identity, Parseval, analytic cases),
// decomposition/transport invariance of the NPB-style checksums, and the
// transpose traffic accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "apps/npb/ft.hpp"
#include "core/cluster.hpp"

namespace icsim::apps::npb {
namespace {

using Cx = std::complex<double>;

TEST(FftLine, DeltaTransformsToConstant) {
  std::vector<Cx> v(8, Cx(0, 0));
  v[0] = Cx(1, 0);
  fft_line(v.data(), 8, false);
  for (const auto& c : v) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftLine, SingleModeLandsInOneBin) {
  constexpr int n = 16;
  std::vector<Cx> v(n);
  for (int i = 0; i < n; ++i) {
    const double ang = 2.0 * M_PI * 3.0 * i / n;  // mode k = 3
    v[static_cast<std::size_t>(i)] = Cx(std::cos(ang), std::sin(ang));
  }
  fft_line(v.data(), n, false);
  for (int k = 0; k < n; ++k) {
    const double mag = std::abs(v[static_cast<std::size_t>(k)]);
    if (k == 3) {
      EXPECT_NEAR(mag, n, 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

TEST(FftLine, InverseRecoversInput) {
  constexpr int n = 64;
  std::vector<Cx> v(n), orig(n);
  for (int i = 0; i < n; ++i) {
    orig[static_cast<std::size_t>(i)] = v[static_cast<std::size_t>(i)] =
        Cx(std::sin(0.1 * i) + 0.3, std::cos(0.2 * i));
  }
  fft_line(v.data(), n, false);
  fft_line(v.data(), n, true);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(v[static_cast<std::size_t>(i)] - orig[static_cast<std::size_t>(i)]),
                0.0, 1e-12);
  }
}

TEST(FftLine, ParsevalHolds) {
  constexpr int n = 32;
  std::vector<Cx> v(n);
  double time_energy = 0.0;
  for (int i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = Cx(0.01 * i * i - 1.0, 0.5 - 0.02 * i);
    time_energy += std::norm(v[static_cast<std::size_t>(i)]);
  }
  fft_line(v.data(), n, false);
  double freq_energy = 0.0;
  for (const auto& c : v) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-9 * time_energy);
}

FtResult run_on(const core::ClusterConfig& cc, const FtConfig& cfg) {
  core::Cluster cluster(cc);
  FtResult result;
  cluster.run([&](mpi::Mpi& mpi) {
    FtResult r = run_ft(mpi, cfg);
    if (mpi.rank() == 0) result = r;
  });
  return result;
}

FtConfig tiny_ft() {
  FtConfig cfg;
  cfg.cls = FtClass{"T", 16, 16, 16, 3};
  return cfg;
}

TEST(Ft, ChecksumsFiniteAndDistinctPerIteration) {
  const auto r = run_on(core::elan_cluster(2), tiny_ft());
  ASSERT_EQ(r.checksums.size(), 3u);
  for (const auto& c : r.checksums) {
    EXPECT_TRUE(std::isfinite(c.real()));
    EXPECT_TRUE(std::isfinite(c.imag()));
    EXPECT_GT(std::abs(c), 1.0);  // 1024 O(0.5)-mean samples
  }
  EXPECT_NE(r.checksums[0], r.checksums[1]);  // evolution changes the field
}

TEST(Ft, DecompositionInvariance) {
  const auto r1 = run_on(core::elan_cluster(1), tiny_ft());
  const auto r4 = run_on(core::elan_cluster(4), tiny_ft());
  ASSERT_EQ(r1.checksums.size(), r4.checksums.size());
  for (std::size_t i = 0; i < r1.checksums.size(); ++i) {
    EXPECT_NEAR(std::abs(r1.checksums[i] - r4.checksums[i]), 0.0,
                1e-8 * std::abs(r1.checksums[i]));
  }
}

TEST(Ft, TransportInvariance) {
  const auto ib = run_on(core::ib_cluster(4), tiny_ft());
  const auto el = run_on(core::elan_cluster(4), tiny_ft());
  for (std::size_t i = 0; i < ib.checksums.size(); ++i) {
    EXPECT_DOUBLE_EQ(ib.checksums[i].real(), el.checksums[i].real());
    EXPECT_DOUBLE_EQ(ib.checksums[i].imag(), el.checksums[i].imag());
  }
}

TEST(Ft, TransposeTrafficScalesWithIterations) {
  FtConfig three = tiny_ft();
  FtConfig one = tiny_ft();
  one.cls.niter = 1;
  const auto r3 = run_on(core::elan_cluster(4), three);
  const auto r1 = run_on(core::elan_cluster(4), one);
  // Forward transpose + one per iteration.
  EXPECT_EQ(r1.transpose_bytes / 2, r3.transpose_bytes / 4);
}

TEST(Ft, RejectsIndivisibleGrid) {
  FtConfig cfg = tiny_ft();
  core::Cluster cluster(core::elan_cluster(3));
  EXPECT_THROW(cluster.run([&](mpi::Mpi& m) { run_ft(m, cfg); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace icsim::apps::npb
