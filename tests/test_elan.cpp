// Elan-4 NIC / Tports model: NIC-side matching, unexpected buffering in
// NIC SDRAM, the get protocol for large messages, and independent progress
// (completions fire without any host MPI activity).

#include <gtest/gtest.h>

#include "elan/tports.hpp"
#include "net/fabric.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"

namespace icsim::elan {
namespace {

class ElanFixture : public ::testing::Test {
 protected:
  ElanFixture()
      : fabric_(engine_, net::FabricConfig{}, 4),
        node0_(engine_, 0, node::NodeConfig{}),
        node1_(engine_, 1, node::NodeConfig{}),
        nic0_(engine_, node0_, &fabric_, ElanConfig{}),
        nic1_(engine_, node1_, &fabric_, ElanConfig{}) {
    world_.nic_of_rank = {&nic0_, &nic1_};
    nic0_.set_world(&world_);
    nic1_.set_world(&world_);
    nic0_.attach_rank(0);
    nic1_.attach_rank(1);
  }

  Payload payload(std::size_t n) {
    auto p = std::make_shared<std::vector<std::byte>>(n);
    for (std::size_t i = 0; i < n; ++i) (*p)[i] = static_cast<std::byte>(i & 0xff);
    return p;
  }

  sim::Engine engine_;
  net::Fabric fabric_;
  node::Node node0_, node1_;
  ElanNic nic0_, nic1_;
  ElanWorld world_;
};

TEST_F(ElanFixture, PostedReceiveGetsMessage) {
  RxStatus seen;
  nic1_.rx(1, 0, 7, 0, [&](const RxStatus& st) { seen = st; });
  bool tx_done = false;
  nic0_.tx(0, 1, 7, 0, payload(256), 256, [&] { tx_done = true; });
  engine_.run();
  EXPECT_EQ(seen.src_rank, 0);
  EXPECT_EQ(seen.tag, 7);
  EXPECT_EQ(seen.bytes, 256u);
  ASSERT_TRUE(seen.payload != nullptr);
  EXPECT_EQ((*seen.payload)[10], static_cast<std::byte>(10));
  EXPECT_TRUE(tx_done);
}

TEST_F(ElanFixture, UnexpectedMessageBuffersInNicMemory) {
  bool rx_done = false;
  nic0_.tx(0, 1, 3, 0, payload(5000), 5000, nullptr);
  engine_.run();  // message fully arrived, nobody posted
  EXPECT_GE(nic1_.nic_buffer_high_water(), 5000u);
  nic1_.rx(1, 0, 3, 0, [&](const RxStatus& st) {
    rx_done = true;
    EXPECT_EQ(st.bytes, 5000u);
  });
  engine_.run();
  EXPECT_TRUE(rx_done);
}

TEST_F(ElanFixture, LargeMessageUsesGetAndCompletesBothSides) {
  const std::size_t big = 100000;  // above get_threshold
  bool rx_done = false, tx_done = false;
  sim::Time tx_time, rx_time;
  nic1_.rx(1, 0, 1, 0, [&](const RxStatus& st) {
    rx_done = true;
    rx_time = engine_.now();
    EXPECT_EQ(st.bytes, big);
  });
  nic0_.tx(0, 1, 1, 0, payload(big), big, [&] {
    tx_done = true;
    tx_time = engine_.now();
  });
  engine_.run();
  EXPECT_TRUE(rx_done);
  EXPECT_TRUE(tx_done);
  // The get keeps the payload at the source until matched, so the source
  // completes only once the pull has drained its host memory.
  EXPECT_GT(tx_time, sim::Time::us(50));
  EXPECT_GT(rx_time, tx_time - sim::Time::us(200));
}

TEST_F(ElanFixture, GetDefersUntilMatched) {
  // Send a big message with no receive posted: only the envelope moves.
  nic0_.tx(0, 1, 9, 0, payload(200000), 200000, nullptr);
  engine_.run();
  EXPECT_LT(nic1_.nic_buffer_high_water(), 1000u);  // no payload buffered
  bool rx_done = false;
  nic1_.rx(1, 0, 9, 0, [&](const RxStatus&) { rx_done = true; });
  engine_.run();
  EXPECT_TRUE(rx_done);
}

TEST_F(ElanFixture, WildcardMatchOnNic) {
  RxStatus seen;
  nic1_.rx(1, mpi::kAnySource, mpi::kAnyTag, 0,
           [&](const RxStatus& st) { seen = st; });
  nic0_.tx(0, 1, 42, 0, payload(16), 16, nullptr);
  engine_.run();
  EXPECT_EQ(seen.tag, 42);
}

TEST_F(ElanFixture, SameNodeLoopback) {
  nic0_.attach_rank(2);
  world_.nic_of_rank.push_back(&nic0_);  // rank 2 shares node 0's NIC
  bool rx_done = false;
  nic0_.rx(2, 0, 1, 0, [&](const RxStatus& st) {
    rx_done = true;
    EXPECT_EQ(st.bytes, 64u);
  });
  nic0_.tx(0, 2, 1, 0, payload(64), 64, nullptr);
  engine_.run();
  EXPECT_TRUE(rx_done);
}

TEST_F(ElanFixture, NicThreadChargesPerMessage) {
  // The NIC thread is a FIFO resource: 20 tiny messages serialize on it.
  int received = 0;
  for (int i = 0; i < 20; ++i) {
    nic1_.rx(1, 0, i, 0, [&](const RxStatus&) { ++received; });
  }
  for (int i = 0; i < 20; ++i) {
    nic0_.tx(0, 1, i, 0, payload(8), 8, nullptr);
  }
  engine_.run();
  EXPECT_EQ(received, 20);
  EXPECT_GE(nic1_.nic_thread().requests(), 20u);
  EXPECT_GE(nic1_.nic_thread().busy_time(), sim::Time::us(2.0));
}

TEST_F(ElanFixture, ZeroByteMessageCompletes) {
  bool rx_done = false;
  nic1_.rx(1, 0, 0, 0, [&](const RxStatus& st) {
    rx_done = true;
    EXPECT_EQ(st.bytes, 0u);
  });
  nic0_.tx(0, 1, 0, 0, payload(0), 0, nullptr);
  engine_.run();
  EXPECT_TRUE(rx_done);
}

TEST_F(ElanFixture, PostedDepthVisible) {
  nic1_.rx(1, 0, 1, 0, [](const RxStatus&) {});
  nic1_.rx(1, 0, 2, 0, [](const RxStatus&) {});
  engine_.run();
  EXPECT_EQ(nic1_.posted_depth(1), 2u);
}

}  // namespace
}  // namespace icsim::elan
