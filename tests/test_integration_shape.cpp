// Integration tests pinning the PAPER-SHAPE facts the reproduction is
// calibrated to.  If a refactor or recalibration breaks one of the study's
// qualitative conclusions, these fail.

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "apps/lammps/md.hpp"
#include "microbench/beff.hpp"
#include "microbench/pingpong.hpp"

namespace icsim {
namespace {

microbench::PingPongOptions pp_opts(std::vector<std::size_t> sizes) {
  microbench::PingPongOptions o;
  o.sizes = std::move(sizes);
  o.repetitions = 30;
  o.warmup = 4;
  return o;
}

TEST(PaperShape, ElanLatencyAboutHalfOfInfiniBand) {
  const auto ib = microbench::run_pingpong(core::ib_cluster(2), pp_opts({0}));
  const auto el = microbench::run_pingpong(core::elan_cluster(2), pp_opts({0}));
  const double ratio = ib[0].latency_us / el[0].latency_us;
  EXPECT_GT(ratio, 1.7);  // "approximately half" (Section 4.1)
  EXPECT_LT(ratio, 3.2);
  EXPECT_LT(el[0].latency_us, 3.0);  // sub-10 us class, Elan ~2 us
  EXPECT_LT(ib[0].latency_us, 7.0);
}

TEST(PaperShape, InfiniBandLatencyJumpBetween1KBand2KB) {
  const auto ib =
      microbench::run_pingpong(core::ib_cluster(2), pp_opts({512, 1024, 2048}));
  const double step_small = ib[1].latency_us / ib[0].latency_us;
  const double step_jump = ib[2].latency_us / ib[1].latency_us;
  EXPECT_GT(step_jump, 1.6);             // the protocol switch
  EXPECT_GT(step_jump, step_small * 1.2);  // sharper than the regular growth
}

TEST(PaperShape, EightKilobyteBandwidthRatioAboutTwo) {
  // Paper: Elan-4 552 MB/s vs InfiniBand 249 MB/s at 8 kB.
  const auto ib = microbench::run_pingpong(core::ib_cluster(2), pp_opts({8192}));
  const auto el = microbench::run_pingpong(core::elan_cluster(2), pp_opts({8192}));
  const double ratio = el[0].bandwidth_mbs / ib[0].bandwidth_mbs;
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.8);
  EXPECT_NEAR(ib[0].bandwidth_mbs, 249.0, 80.0);
  EXPECT_NEAR(el[0].bandwidth_mbs, 552.0, 120.0);
}

TEST(PaperShape, AsymptoticBandwidthsSimilar) {
  const auto ib =
      microbench::run_pingpong(core::ib_cluster(2), pp_opts({2u << 20}));
  const auto el =
      microbench::run_pingpong(core::elan_cluster(2), pp_opts({2u << 20}));
  EXPECT_NEAR(ib[0].bandwidth_mbs / el[0].bandwidth_mbs, 1.0, 0.15);
  EXPECT_GT(ib[0].bandwidth_mbs, 800.0);  // PCI-X bound, both
}

TEST(PaperShape, FourMegabyteRegistrationThrash) {
  const auto ib = microbench::run_pingpong(core::ib_cluster(2),
                                           pp_opts({2u << 20, 4u << 20}));
  const auto el = microbench::run_pingpong(core::elan_cluster(2),
                                           pp_opts({2u << 20, 4u << 20}));
  // InfiniBand collapses at 4 MB; Elan (no registration) does not.
  EXPECT_LT(ib[1].bandwidth_mbs, ib[0].bandwidth_mbs * 0.75);
  EXPECT_GT(el[1].bandwidth_mbs, el[0].bandwidth_mbs * 0.95);
}

TEST(PaperShape, StreamingSmallMessageRatioOverFour) {
  microbench::StreamingOptions o;
  o.sizes = {64};
  o.window = 64;
  o.batches = 8;
  o.warmup_batches = 2;
  const auto ib = microbench::run_streaming(core::ib_cluster(2), o);
  const auto el = microbench::run_streaming(core::elan_cluster(2), o);
  EXPECT_GT(el[0].bandwidth_mbs / ib[0].bandwidth_mbs, 3.5);  // paper: >5x
}

TEST(PaperShape, BeffElanAboveInfiniBand) {
  microbench::BeffOptions o;
  o.lmax = 1 << 17;  // trimmed for test speed
  o.repetitions = 1;
  o.random_patterns = 1;
  const auto ib = microbench::run_beff(core::ib_cluster(8), o);
  const auto el = microbench::run_beff(core::elan_cluster(8), o);
  EXPECT_GT(el.beff_per_process_mbs, ib.beff_per_process_mbs * 1.3);
}

TEST(PaperShape, TwoPpnHurtsInfiniBandMoreThanElan) {
  // Figure 2 in miniature: the LJS workload's 1->2 PPN degradation must be
  // worse on InfiniBand than on Elan-4 (Section 4.2.1).
  auto md_time = [](const core::ClusterConfig& cc) {
    apps::md::MdConfig mc = apps::md::ljs_config();
    mc.cells_x = mc.cells_y = mc.cells_z = 5;
    mc.steps = 12;
    core::Cluster cluster(cc);
    double t = 0.0;
    cluster.run([&](mpi::Mpi& mpi) {
      const auto r = apps::md::run_md(mpi, mc);
      if (mpi.rank() == 0) t = r.loop_seconds;
    });
    return t;
  };
  const double ib1 = md_time(core::ib_cluster(4, 1));
  const double ib2 = md_time(core::ib_cluster(4, 2));
  const double el1 = md_time(core::elan_cluster(4, 1));
  const double el2 = md_time(core::elan_cluster(4, 2));
  EXPECT_GT(ib2, ib1);  // 2 PPN costs something on both networks
  EXPECT_GT(el2, el1);
  EXPECT_GT(ib2 / ib1, el2 / el1);  // ...but more on InfiniBand
}

}  // namespace
}  // namespace icsim
