// InfiniBand HCA model: registration cache behaviour (the 4 MB thrash),
// queue-pair discipline, RDMA write timing and loopback.

#include <gtest/gtest.h>

#include "ib/hca.hpp"
#include "net/fabric.hpp"
#include "node/node.hpp"
#include "sim/engine.hpp"

namespace icsim::ib {
namespace {

RegistrationCache make_cache(std::uint64_t capacity) {
  return RegistrationCache(capacity, 4096, sim::Time::us(25), sim::Time::us(1),
                           sim::Time::us(15), sim::Time::us(0.55));
}

TEST(RegCache, FirstAcquireCostsRegistration) {
  auto c = make_cache(1 << 20);
  const auto buf = logical_buffer(true, 1, 0, 0);
  const auto t = c.acquire(buf, 8192);  // 2 pages
  EXPECT_EQ(t, sim::Time::us(27));
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().registered_bytes, 8192u);
}

TEST(RegCache, RepeatAcquireIsFree) {
  auto c = make_cache(1 << 20);
  const auto buf = logical_buffer(true, 1, 0, 0);
  (void)c.acquire(buf, 4096);
  EXPECT_EQ(c.acquire(buf, 4096), sim::Time::zero());
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(RegCache, DifferentLengthIsADifferentRegion) {
  auto c = make_cache(1 << 20);
  const auto buf = logical_buffer(true, 1, 0, 0);
  (void)c.acquire(buf, 4096);
  EXPECT_GT(c.acquire(buf, 8192), sim::Time::zero());
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(RegCache, EnvelopeIdentityIsDeterministic) {
  // Same envelope -> same region; any field differing -> a new region.
  EXPECT_EQ(logical_buffer(true, 3, 7, 0), logical_buffer(true, 3, 7, 0));
  EXPECT_NE(logical_buffer(true, 3, 7, 0), logical_buffer(false, 3, 7, 0));
  EXPECT_NE(logical_buffer(true, 3, 7, 0), logical_buffer(true, 4, 7, 0));
  EXPECT_NE(logical_buffer(true, 3, 7, 0), logical_buffer(true, 3, 8, 0));
  EXPECT_NE(logical_buffer(true, 3, 7, 0), logical_buffer(true, 3, 7, 1));
}

TEST(RegCache, EvictsLruWhenOverCapacity) {
  auto c = make_cache(10000);  // fits two 4 kB pages + change
  const auto a = logical_buffer(true, 1, 0, 0);
  const auto b = logical_buffer(true, 2, 0, 0);
  const auto d = logical_buffer(true, 3, 0, 0);
  (void)c.acquire(a, 4096);
  (void)c.acquire(b, 4096);
  // Touch a so b is the LRU victim.
  (void)c.acquire(a, 4096);
  const auto t = c.acquire(d, 4096);  // must evict b (dereg cost included)
  EXPECT_GT(t, sim::Time::us(26));    // reg + at least one dereg
  EXPECT_EQ(c.stats().evictions, 1u);
  // a stays cached, b was evicted.
  EXPECT_EQ(c.acquire(a, 4096), sim::Time::zero());
  EXPECT_GT(c.acquire(b, 4096), sim::Time::zero());
}

TEST(RegCache, OversizeRegionAlwaysThrashes) {
  auto c = make_cache(1 << 20);
  const auto buf = logical_buffer(true, 1, 0, 0);
  const auto t1 = c.acquire(buf, 2 << 20);
  const auto t2 = c.acquire(buf, 2 << 20);
  EXPECT_GT(t1, sim::Time::zero());
  EXPECT_EQ(t1, t2);  // never cached: same cost every time
  EXPECT_EQ(c.stats().registered_bytes, 0u);
}

TEST(RegCache, PingPongPairUnderCapacityThrashes) {
  // The Figure 1(b) mechanism: two 4 MB application buffers against a 7 MB
  // pin budget evict each other every iteration.
  auto c = make_cache(7ull << 20);
  const auto s = logical_buffer(true, 1, 0, 0);
  const auto r = logical_buffer(false, 1, 0, 0);
  (void)c.acquire(s, 4 << 20);
  (void)c.acquire(r, 4 << 20);  // evicts s
  std::uint64_t before = c.stats().evictions;
  (void)c.acquire(s, 4 << 20);  // evicts r
  (void)c.acquire(r, 4 << 20);  // evicts s again
  EXPECT_EQ(c.stats().evictions, before + 2);
  EXPECT_EQ(c.stats().hits, 0u);
}

class HcaFixture : public ::testing::Test {
 protected:
  HcaFixture()
      : fabric_(engine_, net::FabricConfig{}, 4),
        node0_(engine_, 0, node::NodeConfig{}),
        node1_(engine_, 1, node::NodeConfig{}),
        hca0_(engine_, node0_, &fabric_, HcaConfig{}),
        hca1_(engine_, node1_, &fabric_, HcaConfig{}) {}

  sim::Engine engine_;
  net::Fabric fabric_;
  node::Node node0_, node1_;
  Hca hca0_, hca1_;
};

TEST_F(HcaFixture, WriteWithoutConnectThrows) {
  hca0_.attach(0, [](const Delivery&) {});
  hca1_.attach(1, [](const Delivery&) {});
  EXPECT_THROW(hca0_.rdma_write(0, hca1_, 1, 64, nullptr, nullptr),
               std::logic_error);
}

TEST_F(HcaFixture, WriteDeliversAfterConnect) {
  bool delivered = false;
  hca1_.attach(1, [&](const Delivery& d) {
    delivered = true;
    EXPECT_EQ(d.src_ep, 0);
    EXPECT_EQ(d.bytes, 4096u);
  });
  EXPECT_GT(hca0_.connect(0, &hca1_, 1), sim::Time::zero());
  bool local_done = false;
  hca0_.rdma_write(0, hca1_, 1, 4096, nullptr, [&] { local_done = true; });
  engine_.run();
  EXPECT_TRUE(delivered);
  EXPECT_TRUE(local_done);
  EXPECT_EQ(hca0_.writes_posted(), 1u);
}

TEST_F(HcaFixture, LocalCompletionPrecedesRemoteDelivery) {
  sim::Time local = sim::Time::zero(), remote = sim::Time::zero();
  hca1_.attach(1, [&](const Delivery&) { remote = engine_.now(); });
  (void)hca0_.connect(0, &hca1_, 1);
  hca0_.rdma_write(0, hca1_, 1, 65536, nullptr, [&] { local = engine_.now(); });
  engine_.run();
  EXPECT_LT(local, remote);  // buffer reusable before last byte lands
  EXPECT_GT(remote, sim::Time::us(60));  // 64 kB through two PCI-X crossings
}

TEST_F(HcaFixture, LoopbackDeliversOnSameNode) {
  bool delivered = false;
  hca0_.attach(0, [](const Delivery&) {});
  hca0_.attach(2, [&](const Delivery&) { delivered = true; });
  (void)hca0_.connect(0, &hca0_, 2);
  hca0_.rdma_write(0, hca0_, 2, 1024, nullptr, nullptr);
  engine_.run();
  EXPECT_TRUE(delivered);
}

TEST_F(HcaFixture, WritesToSamePeerDeliverInOrder) {
  std::vector<int> order;
  hca1_.attach(1, [&](const Delivery& d) {
    order.push_back(static_cast<int>(d.bytes));
  });
  (void)hca0_.connect(0, &hca1_, 1);
  for (int i = 1; i <= 8; ++i) {
    hca0_.rdma_write(0, hca1_, 1, static_cast<std::uint64_t>(i), nullptr, nullptr);
  }
  engine_.run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i + 1);
}

TEST_F(HcaFixture, HcaProcessorSerializesWqes) {
  // Two zero-byte writes: second delivery trails by >= one WQE cost.
  std::vector<sim::Time> arrivals;
  hca1_.attach(1, [&](const Delivery&) { arrivals.push_back(engine_.now()); });
  (void)hca0_.connect(0, &hca1_, 1);
  hca0_.rdma_write(0, hca1_, 1, 0, nullptr, nullptr);
  hca0_.rdma_write(0, hca1_, 1, 0, nullptr, nullptr);
  engine_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE((arrivals[1] - arrivals[0]).to_us(),
            HcaConfig{}.send_wqe_cost.to_us() * 0.99);
}

}  // namespace
}  // namespace icsim::ib
