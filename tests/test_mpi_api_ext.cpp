// Extended MPI API: probe/iprobe, scan, alltoallv and communicator split —
// over both study networks.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/cluster.hpp"
#include "mpi/comm.hpp"

namespace icsim {
namespace {

using core::Network;

class MpiApiExt : public ::testing::TestWithParam<Network> {
 protected:
  [[nodiscard]] core::ClusterConfig cfg(int nodes, int ppn = 1) const {
    return GetParam() == Network::infiniband ? core::ib_cluster(nodes, ppn)
                                             : core::elan_cluster(nodes, ppn);
  }
};

TEST_P(MpiApiExt, IprobeSeesPendingMessage) {
  core::Cluster cluster(cfg(2));
  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      int v = 5;
      mpi.send(&v, sizeof v, 1, 9);
    } else {
      mpi::Status st;
      EXPECT_FALSE(mpi.iprobe(0, 8, &st));  // wrong tag: never matches
      while (!mpi.iprobe(0, 9, &st)) mpi.compute(sim::Time::sec(1e-6));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 9);
      EXPECT_EQ(st.bytes, sizeof(int));
      int v = 0;
      mpi.recv(&v, sizeof v, st.source, st.tag);
      EXPECT_EQ(v, 5);
      EXPECT_FALSE(mpi.iprobe(0, 9, &st));  // consumed
    }
  });
}

TEST_P(MpiApiExt, BlockingProbeWaits) {
  core::Cluster cluster(cfg(2));
  cluster.run([&](mpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.compute(sim::Time::sec(1e-3));
      double v = 2.5;
      mpi.send(&v, sizeof v, 1, 4);
    } else {
      const auto st = mpi.probe(0, 4);
      EXPECT_GE(mpi.wtime(), 1e-3);  // really waited
      EXPECT_EQ(st.bytes, sizeof(double));
      double v = 0;
      mpi.recv(&v, sizeof v, 0, 4);
      EXPECT_DOUBLE_EQ(v, 2.5);
    }
  });
}

TEST_P(MpiApiExt, ScanComputesPrefixSums) {
  core::Cluster cluster(cfg(5));
  cluster.run([&](mpi::Mpi& mpi) {
    const long v = mpi.rank() + 1;
    const long prefix = mpi.scan(v, mpi::ReduceOp::sum);
    EXPECT_EQ(prefix, (mpi.rank() + 1) * (mpi.rank() + 2) / 2);
    const long m = mpi.scan(static_cast<long>(mpi.rank()), mpi::ReduceOp::max);
    EXPECT_EQ(m, mpi.rank());
  });
}

TEST_P(MpiApiExt, AlltoallvVariableCounts) {
  core::Cluster cluster(cfg(4));
  cluster.run([&](mpi::Mpi& mpi) {
    const int n = mpi.size();
    // Rank r sends (d+1) ints to destination d: value = r*100+d.
    std::vector<int> send_counts(static_cast<std::size_t>(n));
    std::vector<int> recv_counts(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      send_counts[static_cast<std::size_t>(d)] = d + 1;
      recv_counts[static_cast<std::size_t>(d)] = mpi.rank() + 1;
    }
    std::vector<int> sdispl(static_cast<std::size_t>(n), 0), rdispl(static_cast<std::size_t>(n), 0);
    for (int d = 1; d < n; ++d) {
      sdispl[static_cast<std::size_t>(d)] = sdispl[static_cast<std::size_t>(d - 1)] + send_counts[static_cast<std::size_t>(d - 1)];
      rdispl[static_cast<std::size_t>(d)] = rdispl[static_cast<std::size_t>(d - 1)] + recv_counts[static_cast<std::size_t>(d - 1)];
    }
    std::vector<int> out(static_cast<std::size_t>(sdispl.back() + n));
    for (int d = 0; d < n; ++d) {
      for (int i = 0; i <= d; ++i) {
        out[static_cast<std::size_t>(sdispl[static_cast<std::size_t>(d)] + i)] =
            mpi.rank() * 100 + d;
      }
    }
    std::vector<int> in(static_cast<std::size_t>(rdispl.back() + mpi.rank() + 1));
    mpi.alltoallv(out.data(), send_counts, sdispl, in.data(), recv_counts, rdispl);
    for (int s = 0; s < n; ++s) {
      for (int i = 0; i <= mpi.rank(); ++i) {
        EXPECT_EQ(in[static_cast<std::size_t>(rdispl[static_cast<std::size_t>(s)] + i)],
                  s * 100 + mpi.rank());
      }
    }
  });
}

TEST_P(MpiApiExt, CommSplitEvenOdd) {
  core::Cluster cluster(cfg(6));
  cluster.run([&](mpi::Mpi& mpi) {
    mpi::Comm world(mpi);
    EXPECT_EQ(world.rank(), mpi.rank());
    EXPECT_EQ(world.size(), mpi.size());

    mpi::Comm half = world.split(mpi.rank() % 2, mpi.rank());
    EXPECT_EQ(half.size(), 3);
    EXPECT_EQ(half.rank(), mpi.rank() / 2);

    // Collectives stay inside the split group.
    const double sum = half.allreduce(static_cast<double>(mpi.rank()),
                                      mpi::ReduceOp::sum);
    const double expect = mpi.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5;
    EXPECT_DOUBLE_EQ(sum, expect);

    // Point-to-point with group-rank addressing.
    if (half.rank() == 0) {
      const int v = 1000 + mpi.rank();
      half.send(&v, sizeof v, 2, 1);
    } else if (half.rank() == 2) {
      int v = 0;
      const auto st = half.recv(&v, sizeof v, 0, 1);
      EXPECT_EQ(st.source, 0);  // group rank, not world rank
      EXPECT_EQ(v, 1000 + (mpi.rank() % 2 == 0 ? 0 : 1));
    }
    half.barrier();
  });
}

TEST_P(MpiApiExt, SplitKeyReordersRanks) {
  core::Cluster cluster(cfg(4));
  cluster.run([&](mpi::Mpi& mpi) {
    mpi::Comm world(mpi);
    // Same color, key = -world_rank: reversed order.
    mpi::Comm rev = world.split(0, -mpi.rank());
    EXPECT_EQ(rev.size(), mpi.size());
    EXPECT_EQ(rev.rank(), mpi.size() - 1 - mpi.rank());
    int v = mpi.rank();
    rev.bcast(&v, 1, 0);  // group root 0 = world rank size-1
    EXPECT_EQ(v, mpi.size() - 1);
  });
}

TEST_P(MpiApiExt, DisjointCommunicatorsDoNotCrossMatch) {
  core::Cluster cluster(cfg(4));
  cluster.run([&](mpi::Mpi& mpi) {
    mpi::Comm world(mpi);
    mpi::Comm grp = world.split(mpi.rank() % 2, mpi.rank());
    // Everyone sends inside its group with the SAME tag; a cross-match
    // would corrupt values.
    const int peer = 1 - grp.rank() % 2 == 0 ? (grp.rank() + 1) % grp.size()
                                             : (grp.rank() + 1) % grp.size();
    int out = 10 * (mpi.rank() % 2) + grp.rank(), in = -1;
    mpi::Request rr = grp.irecv(&in, sizeof in, mpi::kAnySource, 1);
    grp.send(&out, sizeof out, peer, 1);
    grp.wait(rr);
    EXPECT_EQ(in / 10, mpi.rank() % 2);  // came from my own group
  });
}

INSTANTIATE_TEST_SUITE_P(Networks, MpiApiExt,
                         ::testing::Values(Network::infiniband,
                                           Network::quadrics),
                         [](const auto& info) {
                           return info.param == Network::infiniband ? "IB"
                                                                    : "Elan4";
                         });

}  // namespace
}  // namespace icsim
