// Trace-driven replay (src/replay/): format round-trips, precise rejection
// of malformed input, and the headline determinism contract — replaying a
// captured run reproduces its RunStats::event_digest exactly, on both
// fabrics, for real applications (pingpong, NPB CG, LAMMPS LJ) and for
// hand-written synthetic traces with no corresponding C++ app.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "apps/lammps/md.hpp"
#include "apps/npb/cg.hpp"
#include "core/cluster.hpp"
#include "microbench/pingpong.hpp"
#include "replay/capture.hpp"
#include "replay/format.hpp"
#include "replay/replay.hpp"

namespace icsim::replay {
namespace {

// ------------------------------------------------------------------ format

/// One op of every kind, wildcards and non-defaults included.
RankTrace exhaustive_trace() {
  RankTrace t;
  t.rank = 1;
  t.size = 4;
  t.meta = {{"net", "ib"}, {"app", "unit test"}, {"ppn", "2"}};
  const auto add = [&t](TraceOp o) { t.ops.push_back(std::move(o)); };
  TraceOp o;
  o.op = Op::compute;
  o.duration = sim::Time::us(3.5);
  add(o);
  o = {};
  o.op = Op::isend;
  o.peer = 2;
  o.bytes = 4096;
  o.tag = 17;
  add(o);
  o = {};
  o.op = Op::irecv;
  o.peer = -1;  // any source
  o.bytes = 8192;
  o.tag = -1;  // any tag
  add(o);
  o = {};
  o.op = Op::test;
  o.req = 0;
  add(o);
  o = {};
  o.op = Op::wait;
  o.req = 1;
  add(o);
  o = {};
  o.op = Op::send;
  o.peer = 0;
  o.bytes = 1;
  o.tag = 0;
  add(o);
  o = {};
  o.op = Op::recv;
  o.peer = 3;
  o.bytes = 64;
  o.tag = 9;
  add(o);
  o = {};
  o.op = Op::probe;
  o.peer = -1;
  o.tag = 5;
  add(o);
  o = {};
  o.op = Op::iprobe;
  o.peer = 2;
  o.tag = -1;
  add(o);
  o = {};
  o.op = Op::sendrecv;
  o.peer = 2;
  o.bytes = 100;
  o.tag = 3;
  o.peer2 = -1;
  o.bytes2 = 200;
  o.tag2 = -1;
  add(o);
  o = {};
  o.op = Op::barrier;
  add(o);
  o = {};
  o.op = Op::bcast;
  o.peer = 0;
  o.bytes = 1024;
  add(o);
  o = {};
  o.op = Op::reduce;
  o.peer = 3;
  o.bytes = 80;
  o.red = mpi::ReduceOp::max;
  add(o);
  o = {};
  o.op = Op::allreduce;
  o.bytes = 8;
  o.red = mpi::ReduceOp::min;
  add(o);
  o = {};
  o.op = Op::allgather;
  o.bytes = 256;
  add(o);
  o = {};
  o.op = Op::alltoall;
  o.bytes = 512;
  add(o);
  o = {};
  o.op = Op::alltoallv;
  o.send_bytes = {0, 8, 16, 24};
  o.recv_bytes = {4, 0, 12, 20};
  add(o);
  o = {};
  o.op = Op::gather;
  o.peer = 2;
  o.bytes = 40;
  add(o);
  o = {};
  o.op = Op::scan;
  o.bytes = 8;
  o.red = mpi::ReduceOp::prod;
  add(o);
  return t;
}

TEST(TraceFormat, TextRoundTripsLosslessly) {
  const RankTrace t = exhaustive_trace();
  std::stringstream ss;
  write_text(ss, t);
  const RankTrace back = parse(ss, "text");
  EXPECT_EQ(t, back);
}

TEST(TraceFormat, BinaryRoundTripsLosslessly) {
  const RankTrace t = exhaustive_trace();
  std::stringstream ss;
  write_binary(ss, t);
  const RankTrace back = parse(ss, "bin");
  EXPECT_EQ(t, back);
}

TEST(TraceFormat, TextAndBinaryAgree) {
  const RankTrace t = exhaustive_trace();
  std::stringstream text, bin;
  write_text(text, t);
  write_binary(bin, t);
  EXPECT_EQ(parse(text, "t"), parse(bin, "b"));
}

TEST(TraceFormat, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# leading comment\n"
      "icst 1\n"
      "\n"
      "rank 0 2\n"
      "meta app demo app with spaces\n"
      "send 1 64 5   # trailing comment\n"
      "end\n");
  const RankTrace t = parse(ss, "in");
  ASSERT_EQ(t.ops.size(), 1u);
  EXPECT_EQ(t.ops[0].op, Op::send);
  EXPECT_EQ(t.meta_value("app"), "demo app with spaces");
}

void expect_error(const std::string& text, const std::string& needle) {
  std::stringstream ss(text);
  try {
    (void)parse(ss, "in");
    FAIL() << "expected TraceError containing '" << needle << "'";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(TraceFormatErrors, TruncatedFile) {
  expect_error("icst 1\nrank 0 2\nsend 1 64 5\n", "missing 'end'");
}

TEST(TraceFormatErrors, BadOpcode) {
  expect_error("icst 1\nrank 0 2\nfrobnicate 1 2\nend\n",
               "in:3: unknown opcode 'frobnicate'");
}

TEST(TraceFormatErrors, BadArity) {
  expect_error("icst 1\nrank 0 2\nsend 1 64\nend\n", "in:3:");
}

TEST(TraceFormatErrors, NotAnInteger) {
  expect_error("icst 1\nrank 0 2\nsend one 64 5\nend\n", "not an integer");
}

TEST(TraceFormatErrors, NegativeBytes) {
  expect_error("icst 1\nrank 0 2\nsend 1 -64 5\nend\n", "out of range");
}

TEST(TraceFormatErrors, RankOutsideWorld) {
  expect_error("icst 1\nrank 5 2\nend\n", "rank 5 outside world of size 2");
}

TEST(TraceFormatErrors, PeerOutsideWorld) {
  expect_error("icst 1\nrank 0 2\nsend 7 64 5\nend\n",
               "destination 7 outside world of size 2");
}

TEST(TraceFormatErrors, WaitOnUnissuedRequest) {
  expect_error("icst 1\nrank 0 2\nwait 0\nend\n",
               "only 0 nonblocking op(s) were issued");
}

TEST(TraceFormatErrors, TrailingContentAfterEnd) {
  expect_error("icst 1\nrank 0 2\nend\nbarrier\n", "trailing content");
}

TEST(TraceFormatErrors, AlltoallvListLengthMismatch) {
  expect_error("icst 1\nrank 0 4\nalltoallv 1,2 1,2,3,4\nend\n",
               "exactly 4 entries");
}

TEST(TraceFormatErrors, ScanWidthRejected) {
  expect_error("icst 1\nrank 0 2\nscan 3 sum\nend\n",
               "element width must be 1, 2, 4 or 8");
}

TEST(TraceFormatErrors, UnsupportedVersion) {
  expect_error("icst 9\nrank 0 2\nend\n", "unsupported trace version 9");
}

std::string binary_bytes(const RankTrace& t) {
  std::stringstream ss;
  write_binary(ss, t);
  return ss.str();
}

void expect_binary_error(const std::string& data, const std::string& needle) {
  std::stringstream ss(data);
  try {
    (void)parse(ss, "bin");
    FAIL() << "expected TraceError containing '" << needle << "'";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(TraceFormatErrors, BinaryTruncated) {
  const std::string full = binary_bytes(exhaustive_trace());
  expect_binary_error(full.substr(0, full.size() - 3), "truncated");
  expect_binary_error(full.substr(0, 10), "truncated");
}

TEST(TraceFormatErrors, BinaryBadMagic) {
  std::string full = binary_bytes(exhaustive_trace());
  full[3] ^= 0x40;
  expect_binary_error(full, "bad magic");
}

TEST(TraceFormatErrors, BinaryBadOpcode) {
  RankTrace t;
  t.rank = 0;
  t.size = 2;
  TraceOp o;
  o.op = Op::barrier;
  t.ops.push_back(o);
  std::string data = binary_bytes(t);
  // The barrier frame is [len=1][opcode]; corrupt the opcode byte.
  data[data.size() - 3] = static_cast<char>(0x7f);
  expect_binary_error(data, "unknown opcode 127");
}

TEST(TraceFormatErrors, BinaryFrameLengthMismatch) {
  RankTrace t;
  t.rank = 0;
  t.size = 2;
  TraceOp o;
  o.op = Op::barrier;
  t.ops.push_back(o);
  std::string data = binary_bytes(t);
  // Grow the barrier frame's declared length without adding payload: the
  // end frame's bytes get swallowed and the parse must fail loudly.
  data[data.size() - 5] = 3;
  expect_binary_error(data, "excess byte(s)");
}

TEST(TraceFormatErrors, BinaryTrailingGarbage) {
  std::string data = binary_bytes(exhaustive_trace());
  data += "xx";
  expect_binary_error(data, "trailing 2 byte(s)");
}

// ----------------------------------------------------------------- program

TEST(TraceProgramErrors, MissingRank) {
  RankTrace r0;
  r0.rank = 0;
  r0.size = 3;
  RankTrace r2 = r0;
  r2.rank = 2;
  try {
    (void)TraceProgram::from_traces({r0, r2}, "set");
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("world size 3 but 2 rank"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceProgramErrors, WorldSizeMismatch) {
  RankTrace r0;
  r0.rank = 0;
  r0.size = 2;
  RankTrace r1;
  r1.rank = 1;
  r1.size = 4;  // disagrees with r0
  try {
    (void)TraceProgram::from_traces({r0, r1}, "set");
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("declares world size"),
              std::string::npos)
        << e.what();
  }
}

TEST(TraceProgramErrors, DuplicateRank) {
  RankTrace r0;
  r0.rank = 0;
  r0.size = 2;
  try {
    (void)TraceProgram::from_traces({r0, r0}, "set");
    FAIL() << "expected TraceError";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicated"), std::string::npos)
        << e.what();
  }
}

// --------------------------------------------------- capture -> replay

/// Fresh per-test capture directory under the gtest temp root.
std::string capture_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "icsim_replay_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Capture `app` on `cc`, then replay the written trace set on an
/// identical cluster and require digest equality.
void expect_capture_replay_digest(const core::ClusterConfig& cc,
                                  const std::function<void(mpi::Mpi&)>& app,
                                  const std::string& dir) {
  std::uint64_t captured = 0;
  {
    core::ClusterConfig cap = cc;
    cap.mpi_trace_dir = dir;
    core::Cluster cluster(cap);
    (void)cluster.run(app);
    captured = cluster.stats().event_digest;
  }
  const TraceProgram program = TraceProgram::load_dir(dir);
  EXPECT_EQ(program.size(), cc.nodes * cc.ppn);
  core::Cluster cluster(cc);
  (void)cluster.run([&program](mpi::Mpi& m) { program.run_rank(m); });
  EXPECT_EQ(cluster.stats().event_digest, captured)
      << "replay of " << dir << " diverged from its capture";
}

apps::npb::CgConfig tiny_cg() {
  apps::npb::CgConfig cfg;
  cfg.cls = apps::npb::CgClass{"T", 240, 5, 5, 5.0, 0.1};
  cfg.cg_iterations = 4;
  return cfg;
}

apps::md::MdConfig tiny_md() {
  apps::md::MdConfig c = apps::md::ljs_config();
  c.cells_x = c.cells_y = c.cells_z = 4;
  c.steps = 6;
  return c;
}

TEST(CaptureReplay, PingPongInfiniband) {
  expect_capture_replay_digest(
      core::ib_cluster(2),
      [](mpi::Mpi& m) {
        std::vector<char> buf(2048);
        for (int rep = 0; rep < 8; ++rep) {
          if (m.rank() == 0) {
            m.send(buf.data(), 1024, 1, 7);
            m.recv(buf.data(), buf.size(), 1, 7);
          } else if (m.rank() == 1) {
            m.recv(buf.data(), buf.size(), 0, 7);
            m.send(buf.data(), 1024, 0, 7);
          }
        }
      },
      capture_dir("pp_ib"));
}

TEST(CaptureReplay, PingPongElan) {
  expect_capture_replay_digest(
      core::elan_cluster(2),
      [](mpi::Mpi& m) {
        std::vector<char> buf(2048);
        for (int rep = 0; rep < 8; ++rep) {
          if (m.rank() == 0) {
            m.send(buf.data(), 1024, 1, 7);
            m.recv(buf.data(), buf.size(), 1, 7);
          } else if (m.rank() == 1) {
            m.recv(buf.data(), buf.size(), 0, 7);
            m.send(buf.data(), 1024, 0, 7);
          }
        }
      },
      capture_dir("pp_el"));
}

TEST(CaptureReplay, PingPongMicrobenchDigestMatches) {
  // The real microbench harness, captured via its own ClusterConfig.
  const std::string dir = capture_dir("pp_micro");
  core::ClusterConfig cc = core::ib_cluster(2);
  microbench::PingPongOptions opt;
  opt.sizes = {64, 4096};
  opt.repetitions = 5;
  opt.warmup = 1;
  core::Cluster::RunStats captured;
  opt.stats = &captured;
  {
    core::ClusterConfig cap = cc;
    cap.mpi_trace_dir = dir;
    (void)microbench::run_pingpong(cap, opt);
  }
  const TraceProgram program = TraceProgram::load_dir(dir);
  core::Cluster cluster(cc);
  (void)cluster.run([&program](mpi::Mpi& m) { program.run_rank(m); });
  EXPECT_EQ(cluster.stats().event_digest, captured.event_digest);
}

TEST(CaptureReplay, NpbCgInfiniband) {
  const apps::npb::CgConfig cfg = tiny_cg();
  expect_capture_replay_digest(
      core::ib_cluster(4),
      [cfg](mpi::Mpi& m) { (void)apps::npb::run_cg(m, cfg); },
      capture_dir("cg_ib"));
}

TEST(CaptureReplay, NpbCgElan) {
  const apps::npb::CgConfig cfg = tiny_cg();
  expect_capture_replay_digest(
      core::elan_cluster(4),
      [cfg](mpi::Mpi& m) { (void)apps::npb::run_cg(m, cfg); },
      capture_dir("cg_el"));
}

TEST(CaptureReplay, LammpsLjInfiniband) {
  const apps::md::MdConfig mc = tiny_md();
  expect_capture_replay_digest(
      core::ib_cluster(2, 2),
      [mc](mpi::Mpi& m) { (void)apps::md::run_md(m, mc); },
      capture_dir("md_ib"));
}

TEST(CaptureReplay, LammpsLjElan) {
  const apps::md::MdConfig mc = tiny_md();
  expect_capture_replay_digest(
      core::elan_cluster(2, 2),
      [mc](mpi::Mpi& m) { (void)apps::md::run_md(m, mc); },
      capture_dir("md_el"));
}

TEST(CaptureReplay, CaptureDoesNotPerturbTheDigest) {
  // The instrumented run itself must keep the uninstrumented digest —
  // recording is pure observation.
  const auto app = [](mpi::Mpi& m) {
    std::vector<char> buf(512);
    if (m.rank() == 0) m.send(buf.data(), 256, 1, 3);
    if (m.rank() == 1) m.recv(buf.data(), buf.size(), 0, 3);
    m.barrier();
  };
  std::uint64_t plain = 0;
  {
    core::Cluster cluster(core::ib_cluster(2));
    (void)cluster.run(app);
    plain = cluster.stats().event_digest;
  }
  core::ClusterConfig cap = core::ib_cluster(2);
  cap.mpi_trace_dir = capture_dir("noperturb");
  core::Cluster cluster(cap);
  (void)cluster.run(app);
  EXPECT_EQ(cluster.stats().event_digest, plain);
}

// ------------------------------------------------------ synthetic traces

/// A synthetic 2-rank trace written by hand — no C++ app behind it.
std::vector<RankTrace> synthetic_pair() {
  const char* text0 =
      "icst 1\n"
      "rank 0 2\n"
      "compute 1500000\n"
      "isend 1 4096 3\n"
      "irecv any 4096 any\n"
      "compute 2000000\n"
      "wait 0\n"
      "wait 1\n"
      "allreduce 8 sum\n"
      "scan 4 sum\n"
      "alltoallv 0,128 0,96\n"
      "barrier\n"
      "end\n";
  const char* text1 =
      "icst 1\n"
      "rank 1 2\n"
      "compute 900000\n"
      "isend 0 4096 3\n"
      "irecv any 4096 any\n"
      "wait 0\n"
      "wait 1\n"
      "allreduce 8 sum\n"
      "scan 4 sum\n"
      "alltoallv 96,0 128,0\n"
      "barrier\n"
      "end\n";
  std::stringstream s0(text0), s1(text1);
  return {parse(s0, "r0"), parse(s1, "r1")};
}

TEST(SyntheticTrace, RunsOnBothFabricsDeterministically) {
  const TraceProgram program = TraceProgram::from_traces(synthetic_pair());
  for (const auto maker : {core::ib_cluster, core::elan_cluster}) {
    std::uint64_t first = 0;
    for (int round = 0; round < 2; ++round) {
      core::Cluster cluster(maker(2, 1));
      (void)cluster.run([&program](mpi::Mpi& m) { program.run_rank(m); });
      const std::uint64_t d = cluster.stats().event_digest;
      EXPECT_NE(d, 0u);
      if (round == 0) {
        first = d;
      } else {
        EXPECT_EQ(d, first) << "same synthetic trace, same fabric, "
                               "different digest";
      }
    }
  }
}

TEST(SyntheticTrace, SessionWriteThenLoadDirRoundTrips) {
  // CaptureSession::write and TraceProgram::load_dir are inverses.
  const std::string dir = capture_dir("session_rt");
  CaptureSession session(2, {{"net", "el"}, {"ppn", "1"}});
  session.recorder(0).trace() = synthetic_pair()[0];
  session.recorder(1).trace() = synthetic_pair()[1];
  session.write(dir, /*binary=*/true);
  const TraceProgram program = TraceProgram::load_dir(dir);
  EXPECT_EQ(program.size(), 2);
  EXPECT_EQ(program.rank(0), synthetic_pair()[0]);
  EXPECT_EQ(program.rank(1), synthetic_pair()[1]);
}

}  // namespace
}  // namespace icsim::replay
