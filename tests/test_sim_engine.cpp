// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, and the run/run_until contracts.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "trace/sink.hpp"

namespace icsim::sim {
namespace {

TEST(Time, UnitConversionsRoundTrip) {
  EXPECT_EQ(Time::us(1).picoseconds(), 1'000'000);
  EXPECT_EQ(Time::ns(2.5).picoseconds(), 2'500);
  EXPECT_DOUBLE_EQ(Time::sec(1.5).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::ms(3).to_us(), 3000.0);
  EXPECT_EQ(Time::zero().picoseconds(), 0);
}

TEST(Time, ArithmeticAndComparison) {
  const Time a = Time::us(2);
  const Time b = Time::us(3);
  EXPECT_EQ((a + b).to_us(), 5.0);
  EXPECT_EQ((b - a).to_us(), 1.0);
  EXPECT_LT(a, b);
  EXPECT_EQ(a * 3, Time::us(6));
}

TEST(Bandwidth, TransferTime) {
  const auto bw = Bandwidth::gb_per_sec(1.0);
  EXPECT_EQ(bw.transfer_time(1000).picoseconds(), Time::us(1).picoseconds());
  EXPECT_EQ(Bandwidth::mb_per_sec(1.0).transfer_time(1).picoseconds(),
            Time::us(1).picoseconds());
  // 10 Gbit/s of data = 1.25 GB/s.
  EXPECT_NEAR(Bandwidth::gbit_per_sec(10).bytes_per_second(), 1.25e9, 1.0);
}

TEST(Engine, FiresEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(Time::us(3), [&] { order.push_back(3); });
  e.schedule_at(Time::us(1), [&] { order.push_back(1); });
  e.schedule_at(Time::us(2), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), Time::us(3));
}

TEST(Engine, EqualTimesFireInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule_at(Time::us(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) e.schedule_in(Time::us(1), chain);
  };
  e.schedule_in(Time::us(1), chain);
  e.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(e.now(), Time::us(10));
}

TEST(Engine, SchedulingInThePastClampsToNowAndCounts) {
  // Clamp-and-count is the lenient mode: under ICSIM_CHECK a past schedule
  // hard-fails instead (see test_check.cpp), so disarm the auditor here.
  const bool was = check::enabled();
  check::set_enabled(false);
  Engine e;
  e.schedule_at(Time::us(2), [] {});
  e.run();
  EXPECT_EQ(e.past_schedules_clamped(), 0u);
  bool fired = false;
  Time fired_at = Time::zero();
  e.schedule_at(Time::us(1), [&] {
    fired = true;
    fired_at = e.now();
  });
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(fired_at, Time::us(2));  // clamped to now(), not back in time
  EXPECT_EQ(e.past_schedules_clamped(), 1u);
  EXPECT_EQ(e.tracer().metrics().counter("sim.schedule_past_clamped"), 1u);

  e.post_at(Time::us(1), [] {});  // fast path clamps and counts too
  e.run();
  EXPECT_EQ(e.past_schedules_clamped(), 2u);
  check::set_enabled(was);
}

TEST(Engine, PostedEventsInterleaveWithScheduledInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(Time::us(3), [&] { order.push_back(3); });
  e.post_at(Time::us(1), [&] { order.push_back(1); });
  e.post_in(Time::us(2), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, CancelledEventDoesNotFire) {
  Engine e;
  bool fired = false;
  EventHandle h = e.schedule_at(Time::us(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(Time::us(1), [&] { ++fired; });
  e.schedule_at(Time::us(10), [&] { ++fired; });
  e.run_until(Time::us(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), Time::us(5));
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilIncludesEventsAtDeadline) {
  Engine e;
  bool fired = false;
  e.schedule_at(Time::us(5), [&] { fired = true; });
  e.run_until(Time::us(5));
  EXPECT_TRUE(fired);
}

TEST(Engine, CountsProcessedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(Time::us(i + 1), [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 7u);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    std::int64_t checksum = 0;
    for (int i = 0; i < 100; ++i) {
      e.schedule_at(Time::us((i * 37) % 50), [&checksum, &e, i] {
        checksum = checksum * 31 + i + e.now().picoseconds() % 1000;
      });
    }
    e.run();
    return checksum;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, RunUntilSkipsCancelledHeadWithoutOverrunningDeadline) {
  // Regression: a cancelled tombstone at the queue head used to pass the
  // deadline guard (its timestamp was <= deadline), after which step()
  // discarded it and executed the next *live* event — even when that event
  // lay past the deadline.
  Engine e;
  bool late_fired = false;
  EventHandle h = e.schedule_at(Time::us(1), [] {});
  e.schedule_at(Time::us(10), [&] { late_fired = true; });
  h.cancel();
  e.run_until(Time::us(5));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(e.now(), Time::us(5));
  e.run();
  EXPECT_TRUE(late_fired);
}

TEST(Engine, RunUntilDrainsConsecutiveTombstones) {
  Engine e;
  int fired = 0;
  std::vector<EventHandle> dead;
  for (int i = 1; i <= 3; ++i) {
    dead.push_back(e.schedule_at(Time::us(i), [] {}));
  }
  e.schedule_at(Time::us(4), [&] { ++fired; });
  e.schedule_at(Time::us(9), [&] { ++fired; });
  for (auto& h : dead) h.cancel();
  e.run_until(Time::us(5));
  EXPECT_EQ(fired, 1);  // only the live event inside the window
  EXPECT_EQ(e.now(), Time::us(5));
}

TEST(Engine, PendingFlipsFalseWhenTheEventFires) {
  // Regression: the tombstone used to stay true forever after the event
  // executed, so pending() lied and a late cancel() "cancelled" an event
  // that had already run.
  Engine e;
  EventHandle h;
  bool pending_inside = true;
  h = e.schedule_at(Time::us(1), [&] { pending_inside = h.pending(); });
  EXPECT_TRUE(h.pending());
  e.run();
  EXPECT_FALSE(pending_inside);  // already not-pending while the closure runs
  EXPECT_FALSE(h.pending());
  // A late cancel is a no-op: nothing left to drop, nothing counted.
  h.cancel();
  e.schedule_at(Time::us(2), [] {});
  e.run();
  EXPECT_EQ(e.events_cancelled_dropped(), 0u);
}

TEST(Engine, CancelledDropsAreCountedOnBothDrainPaths) {
  Engine e;
  // Path 1: step() reaches the tombstone when its time arrives.
  EventHandle a = e.schedule_at(Time::us(1), [] {});
  a.cancel();
  e.schedule_at(Time::us(2), [] {});
  e.run();
  EXPECT_EQ(e.events_cancelled_dropped(), 1u);
  // Path 2: run_until()'s deadline guard drains tombstoned heads.
  EventHandle b = e.schedule_at(Time::us(3), [] {});
  EventHandle c = e.schedule_at(Time::us(4), [] {});
  b.cancel();
  c.cancel();
  e.run_until(Time::us(10));
  EXPECT_EQ(e.events_cancelled_dropped(), 3u);
  // The metrics registry mirrors the authoritative member.
  EXPECT_EQ(e.tracer().metrics().counter("sim.cancelled_dropped"), 3u);
  // Accounting reconciles: scheduled == processed + dropped + pending.
  EXPECT_EQ(e.events_processed() + e.events_cancelled_dropped(), 4u);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, NextEventTimeSkipsAndCountsTombstones) {
  Engine e;
  EventHandle dead = e.schedule_at(Time::us(1), [] {});
  e.schedule_at(Time::us(5), [] {});
  dead.cancel();
  const std::optional<Time> next = e.next_event_time();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, Time::us(5));
  EXPECT_EQ(e.events_cancelled_dropped(), 1u);
  e.run();
  EXPECT_FALSE(e.next_event_time().has_value());
}

TEST(Engine, QueueDepthSamplingRegistersOneEngineComponent) {
  // Regression: sample_queue_depth() used a component id of 0 as "not
  // registered yet", but register_component legitimately hands out ids
  // starting at 1 — the sentinel scheme re-registered "engine" every 1024
  // events once anything else had claimed an id.  The bound state is now an
  // explicit std::optional.
  Engine e;
  trace::RingBufferSink sink(1 << 12);
  e.tracer().enable(sink);
  for (int i = 0; i < 3000; ++i) {
    e.post_at(Time::ns(i), [] {});  // crosses the 1024-event sample mark 2x
  }
  e.run();
  int engine_components = 0;
  for (const auto& c : e.tracer().components()) {
    if (c.name == "engine") ++engine_components;
  }
  EXPECT_EQ(engine_components, 1);
  e.tracer().disable();
}

TEST(Engine, PastClampCountSurvivesLazyMetricBinding) {
  // Regression: the clamp counter lived only in the metrics registry behind
  // a zero-value sentinel id, so counts before the lazy bind (or a
  // legitimately-zero binding) were conflated with "not bound yet".
  const bool was = check::enabled();
  check::set_enabled(false);
  Engine e;
  e.post_at(Time::us(5), [] {});
  e.run();
  EXPECT_EQ(e.past_schedules_clamped(), 0u);
  e.post_at(Time::us(1), [] {});  // 4 us in the past: clamped to now
  e.post_at(Time::us(2), [] {});
  e.run();
  EXPECT_EQ(e.past_schedules_clamped(), 2u);
  EXPECT_EQ(e.tracer().metrics().counter("sim.schedule_past_clamped"), 2u);
  check::set_enabled(was);
}

}  // namespace
}  // namespace icsim::sim
