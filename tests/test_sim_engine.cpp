// Unit tests for the discrete-event engine: ordering, determinism,
// cancellation, and the run/run_until contracts.

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace icsim::sim {
namespace {

TEST(Time, UnitConversionsRoundTrip) {
  EXPECT_EQ(Time::us(1).picoseconds(), 1'000'000);
  EXPECT_EQ(Time::ns(2.5).picoseconds(), 2'500);
  EXPECT_DOUBLE_EQ(Time::sec(1.5).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(Time::ms(3).to_us(), 3000.0);
  EXPECT_EQ(Time::zero().picoseconds(), 0);
}

TEST(Time, ArithmeticAndComparison) {
  const Time a = Time::us(2);
  const Time b = Time::us(3);
  EXPECT_EQ((a + b).to_us(), 5.0);
  EXPECT_EQ((b - a).to_us(), 1.0);
  EXPECT_LT(a, b);
  EXPECT_EQ(a * 3, Time::us(6));
}

TEST(Bandwidth, TransferTime) {
  const auto bw = Bandwidth::gb_per_sec(1.0);
  EXPECT_EQ(bw.transfer_time(1000).picoseconds(), Time::us(1).picoseconds());
  EXPECT_EQ(Bandwidth::mb_per_sec(1.0).transfer_time(1).picoseconds(),
            Time::us(1).picoseconds());
  // 10 Gbit/s of data = 1.25 GB/s.
  EXPECT_NEAR(Bandwidth::gbit_per_sec(10).bytes_per_second(), 1.25e9, 1.0);
}

TEST(Engine, FiresEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(Time::us(3), [&] { order.push_back(3); });
  e.schedule_at(Time::us(1), [&] { order.push_back(1); });
  e.schedule_at(Time::us(2), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), Time::us(3));
}

TEST(Engine, EqualTimesFireInSchedulingOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    e.schedule_at(Time::us(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) e.schedule_in(Time::us(1), chain);
  };
  e.schedule_in(Time::us(1), chain);
  e.run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(e.now(), Time::us(10));
}

TEST(Engine, SchedulingInThePastClampsToNowAndCounts) {
  // Clamp-and-count is the lenient mode: under ICSIM_CHECK a past schedule
  // hard-fails instead (see test_check.cpp), so disarm the auditor here.
  const bool was = check::enabled();
  check::set_enabled(false);
  Engine e;
  e.schedule_at(Time::us(2), [] {});
  e.run();
  EXPECT_EQ(e.past_schedules_clamped(), 0u);
  bool fired = false;
  Time fired_at = Time::zero();
  e.schedule_at(Time::us(1), [&] {
    fired = true;
    fired_at = e.now();
  });
  e.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(fired_at, Time::us(2));  // clamped to now(), not back in time
  EXPECT_EQ(e.past_schedules_clamped(), 1u);
  EXPECT_EQ(e.tracer().metrics().counter("sim.schedule_past_clamped"), 1u);

  e.post_at(Time::us(1), [] {});  // fast path clamps and counts too
  e.run();
  EXPECT_EQ(e.past_schedules_clamped(), 2u);
  check::set_enabled(was);
}

TEST(Engine, PostedEventsInterleaveWithScheduledInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(Time::us(3), [&] { order.push_back(3); });
  e.post_at(Time::us(1), [&] { order.push_back(1); });
  e.post_in(Time::us(2), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.events_processed(), 3u);
}

TEST(Engine, CancelledEventDoesNotFire) {
  Engine e;
  bool fired = false;
  EventHandle h = e.schedule_at(Time::us(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(Time::us(1), [&] { ++fired; });
  e.schedule_at(Time::us(10), [&] { ++fired; });
  e.run_until(Time::us(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), Time::us(5));
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilIncludesEventsAtDeadline) {
  Engine e;
  bool fired = false;
  e.schedule_at(Time::us(5), [&] { fired = true; });
  e.run_until(Time::us(5));
  EXPECT_TRUE(fired);
}

TEST(Engine, CountsProcessedEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(Time::us(i + 1), [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 7u);
  EXPECT_EQ(e.events_pending(), 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine e;
    std::int64_t checksum = 0;
    for (int i = 0; i < 100; ++i) {
      e.schedule_at(Time::us((i * 37) % 50), [&checksum, &e, i] {
        checksum = checksum * 31 + i + e.now().picoseconds() % 1000;
      });
    }
    e.run();
    return checksum;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, RunUntilSkipsCancelledHeadWithoutOverrunningDeadline) {
  // Regression: a cancelled tombstone at the queue head used to pass the
  // deadline guard (its timestamp was <= deadline), after which step()
  // discarded it and executed the next *live* event — even when that event
  // lay past the deadline.
  Engine e;
  bool late_fired = false;
  EventHandle h = e.schedule_at(Time::us(1), [] {});
  e.schedule_at(Time::us(10), [&] { late_fired = true; });
  h.cancel();
  e.run_until(Time::us(5));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(e.now(), Time::us(5));
  e.run();
  EXPECT_TRUE(late_fired);
}

TEST(Engine, RunUntilDrainsConsecutiveTombstones) {
  Engine e;
  int fired = 0;
  std::vector<EventHandle> dead;
  for (int i = 1; i <= 3; ++i) {
    dead.push_back(e.schedule_at(Time::us(i), [] {}));
  }
  e.schedule_at(Time::us(4), [&] { ++fired; });
  e.schedule_at(Time::us(9), [&] { ++fired; });
  for (auto& h : dead) h.cancel();
  e.run_until(Time::us(5));
  EXPECT_EQ(fired, 1);  // only the live event inside the window
  EXPECT_EQ(e.now(), Time::us(5));
}

}  // namespace
}  // namespace icsim::sim
