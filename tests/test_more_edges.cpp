// Additional edge coverage: rectangular FT grids, nested communicator
// splits, fabric contention arithmetic, PPN > 2, and zero-size collective
// corner cases.

#include <gtest/gtest.h>

#include <vector>

#include "apps/npb/ft.hpp"
#include "core/cluster.hpp"
#include "mpi/comm.hpp"
#include "net/fabric.hpp"

namespace icsim {
namespace {

TEST(FtEdges, RectangularClassWShape) {
  // 128 x 128 x 32, the class-W shape, on 8 ranks (both 128%8 and 32%8 ok).
  apps::npb::FtConfig cfg;
  cfg.cls = apps::npb::FtClass{"w8", 64, 64, 32, 2};  // scaled-down W shape
  core::Cluster cluster(core::elan_cluster(8));
  std::vector<std::complex<double>> sums;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto r = apps::npb::run_ft(mpi, cfg);
    if (mpi.rank() == 0) sums = r.checksums;
  });
  ASSERT_EQ(sums.size(), 2u);
  EXPECT_TRUE(std::isfinite(sums[0].real()));

  // Same shape serially: identical checksums.
  core::Cluster serial(core::elan_cluster(1));
  serial.run([&](mpi::Mpi& mpi) {
    const auto r = apps::npb::run_ft(mpi, cfg);
    EXPECT_NEAR(std::abs(r.checksums[1] - sums[1]), 0.0,
                1e-8 * std::abs(sums[1]));
  });
}

TEST(CommEdges, NestedSplits) {
  core::Cluster cluster(core::elan_cluster(8));
  cluster.run([&](mpi::Mpi& mpi) {
    mpi::Comm world(mpi);
    mpi::Comm half = world.split(mpi.rank() / 4, mpi.rank());  // two groups of 4
    mpi::Comm quarter = half.split(half.rank() / 2, half.rank());  // of 2
    EXPECT_EQ(quarter.size(), 2);
    const double s = quarter.allreduce(1.0, mpi::ReduceOp::sum);
    EXPECT_DOUBLE_EQ(s, 2.0);
    // The three levels must not cross-match even with identical tags.
    int a = mpi.rank(), b = -1;
    quarter.send(&a, sizeof a, 1 - quarter.rank(), 0);
    (void)quarter.recv(&b, sizeof b, 1 - quarter.rank(), 0);
    EXPECT_EQ(b / 2, mpi.rank() / 2);  // partner is my quarter-neighbour
  });
}

TEST(CommEdges, SingletonCommunicatorWorks) {
  core::Cluster cluster(core::elan_cluster(3));
  cluster.run([&](mpi::Mpi& mpi) {
    mpi::Comm world(mpi);
    mpi::Comm solo = world.split(mpi.rank(), 0);  // everyone alone
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    solo.barrier();
    EXPECT_DOUBLE_EQ(solo.allreduce(5.0, mpi::ReduceOp::sum), 5.0);
  });
}

TEST(FabricEdges, ContentionIsAdditive) {
  // N flows over one shared link: delivery of the last message scales
  // linearly with N (exact FIFO arithmetic).
  auto last_delivery_us = [](int flows) {
    sim::Engine e;
    net::FabricConfig cfg;
    cfg.radix_down = 4;
    cfg.levels = 1;
    cfg.header_bytes = 0;
    net::Fabric f(e, cfg, 4);
    sim::Time last = sim::Time::zero();
    for (int i = 0; i < flows; ++i) {
      // All from distinct sources into node 3: share its ingress link.
      f.inject(i % 3, 3, 10000, [&](net::DeliveryStatus) { last = e.now(); });
    }
    e.run();
    return last.to_us();
  };
  const double one = last_delivery_us(1);
  const double four = last_delivery_us(4);
  EXPECT_NEAR(four - one, 3 * 10.0, 0.5);  // 3 extra 10 kB serializations
}

TEST(PpnEdges, FourRanksPerNode) {
  // The model allows PPN > 2 (more ranks than CPUs): compute phases
  // contend but communication still works.
  core::ClusterConfig cc = core::elan_cluster(2, 4);
  cc.node.cpus = 4;
  core::Cluster cluster(cc);
  cluster.run([&](mpi::Mpi& mpi) {
    EXPECT_EQ(mpi.size(), 8);
    const double s = mpi.allreduce(1.0, mpi::ReduceOp::sum);
    EXPECT_DOUBLE_EQ(s, 8.0);
  });
}

TEST(CollectiveEdges, SingleRankCollectivesAreLocal) {
  core::Cluster cluster(core::ib_cluster(1, 1));
  cluster.run([&](mpi::Mpi& mpi) {
    mpi.barrier();
    double v = 7.0;
    mpi.bcast(&v, 1, 0);
    EXPECT_DOUBLE_EQ(mpi.allreduce(v, mpi::ReduceOp::sum), 7.0);
    std::vector<int> in(1, 3), out(1, 0);
    mpi.alltoall(in.data(), 1, out.data());
    EXPECT_EQ(out[0], 3);
    EXPECT_EQ(mpi.scan(4, mpi::ReduceOp::sum), 4);
  });
}

TEST(CollectiveEdges, ZeroByteBcastAndBarrierInterleave) {
  core::Cluster cluster(core::elan_cluster(4));
  cluster.run([&](mpi::Mpi& mpi) {
    for (int i = 0; i < 5; ++i) {
      char nothing = 0;
      mpi.bcast(&nothing, 0, i % mpi.size());
      mpi.barrier();
    }
  });
}

}  // namespace
}  // namespace icsim
