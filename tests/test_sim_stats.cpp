// Statistics accumulators.

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace icsim::sim {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Histogram, CountsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps to first bucket
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
}

}  // namespace
}  // namespace icsim::sim
