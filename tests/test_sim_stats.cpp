// Statistics accumulators.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "sim/stats.hpp"

namespace icsim::sim {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Histogram, CountsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps to first bucket
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
}

TEST(RunningStat, NegativeAndMixedSigns) {
  RunningStat s;
  for (double v : {-5.0, -1.0, 1.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, ConstantSamplesHaveZeroVariance) {
  RunningStat s;
  for (int i = 0; i < 1000; ++i) s.add(7.25);
  EXPECT_DOUBLE_EQ(s.mean(), 7.25);
  EXPECT_NEAR(s.variance(), 0.0, 1e-12);
}

TEST(Histogram, EmptyQuantileReturnsBounds) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.total(), 0u);
  // No samples: any quantile lands on a bucket edge within [lo, hi].
  const double q = h.quantile(0.5);
  EXPECT_GE(q, h.lo());
  EXPECT_LE(q, h.hi());
}

TEST(Histogram, QuantileExtremes) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(5.0);  // all in one bucket
  const double lo_q = h.quantile(0.0);
  const double hi_q = h.quantile(1.0);
  EXPECT_LE(lo_q, hi_q);
  EXPECT_GE(lo_q, 0.0);
  EXPECT_LE(hi_q, 10.0);
  // Every sample is 5.0, so any mass quantile is the bucket containing it.
  EXPECT_NEAR(h.quantile(0.5), 6.0, 1.0);  // upper edge of bucket [5,6)
}

TEST(Histogram, SingleBucketDegenerateRange) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.0);
  h.add(0.5);
  h.add(2.0);  // clamps
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.buckets()[0], 3u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
}

TEST(Histogram, BoundaryValuesLandInExpectedBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);            // first bucket
  h.add(10.0);           // at hi: clamps into last bucket
  h.add(9.9999999);      // last bucket
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[9], 2u);
}

TEST(RunningStat, VarianceNeverNegativeUnderCancellation) {
  // Regression: Welford's m2_ can drift a few ulps below zero when the
  // samples are a huge offset plus tiny jitter; variance() must clamp so
  // stddev() never goes NaN.
  RunningStat s;
  for (int i = 0; i < 10000; ++i) {
    s.add(1e15 + (i % 2 == 0 ? 0.25 : -0.25));
  }
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_FALSE(std::isnan(s.stddev()));
}

TEST(Histogram, ZeroQuantileIsLowerBound) {
  // Regression: q == 0 requires no bucket mass, so the answer is lo(), not
  // the first occupied bucket's upper edge.
  Histogram h(2.0, 10.0, 8);
  for (int i = 0; i < 50; ++i) h.add(9.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(Histogram(2.0, 10.0, 8).quantile(0.5), 2.0);  // empty
}

TEST(Histogram, NanSamplesAreDroppedAndCounted) {
  // Regression: casting NaN to an integer bucket index is undefined
  // behaviour; NaN samples must be dropped (and visible via nan_dropped()).
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.nan_dropped(), 2u);
  EXPECT_EQ(h.buckets()[5], 1u);
}

TEST(Histogram, LogSpacedBucketsAreGeometric) {
  // 3 decades at 24/decade: 72 buckets whose edges form one geometric
  // progression from lo to hi.
  Histogram h = Histogram::log_spaced(1.0, 1000.0, 24);
  ASSERT_EQ(h.buckets().size(), 72u);
  EXPECT_EQ(h.scale(), Histogram::Scale::log);
  EXPECT_DOUBLE_EQ(h.bucket_edge(0), 1.0);
  EXPECT_NEAR(h.bucket_edge(72), 1000.0, 1e-9);
  const double ratio = h.bucket_edge(1) / h.bucket_edge(0);
  for (std::size_t i = 1; i < 72; ++i) {
    EXPECT_NEAR(h.bucket_edge(i + 1) / h.bucket_edge(i), ratio, 1e-12);
  }
}

TEST(Histogram, LogQuantileRelativeErrorIsBounded) {
  // The log layout's contract: any quantile lands within one bucket ratio
  // (~10% at 24/decade) of the exact order statistic, across decades.
  Histogram h = Histogram::log_spaced(1.0, 1e6, 24);
  std::vector<double> xs;
  for (int i = 1; i <= 1000; ++i) {
    xs.push_back(1.5 * std::pow(1.012, i));  // spans ~1.5 .. 2.3e5
    h.add(xs.back());
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact =
        xs[static_cast<std::size_t>(q * 1000.0) - 1];  // sorted by build
    const double est = h.quantile(q);
    EXPECT_GE(est, exact * 0.999);
    EXPECT_LE(est, exact * 1.11);
  }
}

TEST(Histogram, TailQuantilesClampToExactMaximumInBothModes) {
  // quantile(1.0) answers the largest sample *seen*, never a bucket edge
  // above it — in both layouts; p999 of a 1000-sample set is the 999th
  // order statistic's bucket, also observation-clamped.
  Histogram lin(0.0, 1e6, 50);
  Histogram log_h = Histogram::log_spaced(0.5, 1e6, 24);
  for (int i = 0; i < 999; ++i) {
    lin.add(10.0);
    log_h.add(10.0);
  }
  lin.add(5000.0);
  log_h.add(5000.0);
  EXPECT_DOUBLE_EQ(lin.quantile(1.0), 5000.0);
  EXPECT_DOUBLE_EQ(log_h.quantile(1.0), 5000.0);
  // The 999th of 1000 samples is a 10.0: p999 must stay in its bucket.
  EXPECT_LE(log_h.p999(), 10.0 * 1.11);
  EXPECT_GE(log_h.p999(), 10.0);
  // The linear layout sized for [0, 1e6) smears the body into its first
  // 20000-wide bucket — exactly the failure mode log buckets exist for.
  EXPECT_GT(lin.p999() / 10.0, 100.0);
}

TEST(Histogram, QuantileEdgeCasesBothModes) {
  for (const auto scale : {Histogram::Scale::linear, Histogram::Scale::log}) {
    Histogram h(1.0, 100.0, 20, scale);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);  // empty: lo()
    h.add(42.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);  // q=0 needs no mass: lo()
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
    EXPECT_DOUBLE_EQ(h.min_seen(), 42.0);
    EXPECT_DOUBLE_EQ(h.max_seen(), 42.0);
    // Monotone in q with mixed mass.
    h.add(2.0);
    h.add(90.0);
    double prev = 0.0;
    for (double q : {0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      const double v = h.quantile(q);
      EXPECT_GE(v, prev);
      prev = v;
    }
  }
}

}  // namespace
}  // namespace icsim::sim
