// Statistics accumulators.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/stats.hpp"

namespace icsim::sim {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Histogram, CountsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps to first bucket
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(Histogram, QuantileMonotone) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
}

TEST(RunningStat, NegativeAndMixedSigns) {
  RunningStat s;
  for (double v : {-5.0, -1.0, 1.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStat, ConstantSamplesHaveZeroVariance) {
  RunningStat s;
  for (int i = 0; i < 1000; ++i) s.add(7.25);
  EXPECT_DOUBLE_EQ(s.mean(), 7.25);
  EXPECT_NEAR(s.variance(), 0.0, 1e-12);
}

TEST(Histogram, EmptyQuantileReturnsBounds) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_EQ(h.total(), 0u);
  // No samples: any quantile lands on a bucket edge within [lo, hi].
  const double q = h.quantile(0.5);
  EXPECT_GE(q, h.lo());
  EXPECT_LE(q, h.hi());
}

TEST(Histogram, QuantileExtremes) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(5.0);  // all in one bucket
  const double lo_q = h.quantile(0.0);
  const double hi_q = h.quantile(1.0);
  EXPECT_LE(lo_q, hi_q);
  EXPECT_GE(lo_q, 0.0);
  EXPECT_LE(hi_q, 10.0);
  // Every sample is 5.0, so any mass quantile is the bucket containing it.
  EXPECT_NEAR(h.quantile(0.5), 6.0, 1.0);  // upper edge of bucket [5,6)
}

TEST(Histogram, SingleBucketDegenerateRange) {
  Histogram h(0.0, 1.0, 1);
  h.add(0.0);
  h.add(0.5);
  h.add(2.0);  // clamps
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.buckets()[0], 3u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
}

TEST(Histogram, BoundaryValuesLandInExpectedBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);            // first bucket
  h.add(10.0);           // at hi: clamps into last bucket
  h.add(9.9999999);      // last bucket
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[9], 2u);
}

TEST(RunningStat, VarianceNeverNegativeUnderCancellation) {
  // Regression: Welford's m2_ can drift a few ulps below zero when the
  // samples are a huge offset plus tiny jitter; variance() must clamp so
  // stddev() never goes NaN.
  RunningStat s;
  for (int i = 0; i < 10000; ++i) {
    s.add(1e15 + (i % 2 == 0 ? 0.25 : -0.25));
  }
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_FALSE(std::isnan(s.stddev()));
}

TEST(Histogram, ZeroQuantileIsLowerBound) {
  // Regression: q == 0 requires no bucket mass, so the answer is lo(), not
  // the first occupied bucket's upper edge.
  Histogram h(2.0, 10.0, 8);
  for (int i = 0; i < 50; ++i) h.add(9.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(Histogram(2.0, 10.0, 8).quantile(0.5), 2.0);  // empty
}

TEST(Histogram, NanSamplesAreDroppedAndCounted) {
  // Regression: casting NaN to an integer bucket index is undefined
  // behaviour; NaN samples must be dropped (and visible via nan_dropped()).
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.nan_dropped(), 2u);
  EXPECT_EQ(h.buckets()[5], 1u);
}

}  // namespace
}  // namespace icsim::sim
