// Example: interactive-style cost exploration — sweep cluster sizes and
// print the full bill of materials for each network build-out.
//
//   $ ./build/examples/cost_explorer [nodes]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cost/cost_model.hpp"

namespace {

void print_bom(const char* name, const icsim::cost::NetworkCost& c, int nodes) {
  std::printf("  %-22s switches:%4d  cables:%5d  adapters $%9.0f  "
              "switches $%10.0f  cables $%8.0f  => $%7.0f/node\n",
              name, c.switch_count, c.cable_count, c.adapters, c.switches,
              c.cables, c.per_node(nodes));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icsim;
  const int chosen = argc > 1 ? std::atoi(argv[1]) : 0;

  for (const int n : chosen > 0 ? std::vector<int>{chosen}
                                : std::vector<int>{32, 256, 1024}) {
    std::printf("--- %d nodes ---\n", n);
    print_bom("Quadrics Elan-4", cost::quadrics_network(n), n);
    print_bom("InfiniBand 96-port", cost::ib96_network(n), n);
    print_bom("InfiniBand 24/288 2:1", cost::ib_24_288_network(n, false), n);
    print_bom("InfiniBand 24/288 full", cost::ib_24_288_network(n, true), n);
    const double node_cost = 2500.0;
    std::printf("  total system (with $%.0f nodes): Elan $%.0f/node, IB-96 "
                "$%.0f/node, IB-24/288 $%.0f/node\n\n",
                node_cost,
                cost::total_system_per_node(cost::quadrics_network(n), n),
                cost::total_system_per_node(cost::ib96_network(n), n),
                cost::total_system_per_node(cost::ib_24_288_network(n, false), n));
  }
  return 0;
}
