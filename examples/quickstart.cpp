// Quickstart: build a two-node cluster for each network, run a ping-pong
// by hand with the public MPI API, and print what the simulated clock saw.
//
//   $ ./build/examples/quickstart
//
// This is the smallest complete icsim program: configure a cluster, give
// every rank an SPMD function, and read simulated time with mpi.wtime().

#include <cstdio>
#include <vector>

#include "core/cluster.hpp"

int main() {
  using namespace icsim;

  for (const auto net : {core::Network::infiniband, core::Network::quadrics}) {
    core::ClusterConfig cfg = net == core::Network::infiniband
                                  ? core::ib_cluster(/*nodes=*/2)
                                  : core::elan_cluster(/*nodes=*/2);
    core::Cluster cluster(cfg);

    double latency_us = 0.0;
    cluster.run([&](mpi::Mpi& mpi) {
      constexpr int kReps = 100;
      constexpr std::size_t kBytes = 8;
      std::vector<std::byte> buf(kBytes);
      const int peer = 1 - mpi.rank();

      const double t0 = mpi.wtime();
      for (int i = 0; i < kReps; ++i) {
        if (mpi.rank() == 0) {
          mpi.send(buf.data(), kBytes, peer, /*tag=*/0);
          mpi.recv(buf.data(), buf.size(), peer, /*tag=*/0);
        } else {
          mpi.recv(buf.data(), buf.size(), peer, /*tag=*/0);
          mpi.send(buf.data(), kBytes, peer, /*tag=*/0);
        }
      }
      if (mpi.rank() == 0) {
        latency_us = (mpi.wtime() - t0) / (2.0 * kReps) * 1e6;
      }
    });

    std::printf("%-18s  8-byte ping-pong latency: %5.2f us\n",
                core::to_string(net), latency_us);
  }
  std::printf("\n(The Elan-4 number should be roughly half the InfiniBand "
              "one — the paper's Figure 1(a).)\n");
  return 0;
}
