// Example: departing from the paper's calibrated platforms — build a
// hypothetical InfiniBand variant with an MPI stack that has a bigger
// eager threshold and a deeper eager ring, and see what it does to the
// latency curve.  This is how the library is meant to be used for "what
// if" interconnect studies.
//
//   $ ./build/examples/custom_network

#include <cstdio>

#include "core/cluster.hpp"
#include "microbench/pingpong.hpp"

int main() {
  using namespace icsim;

  microbench::PingPongOptions opt;
  opt.sizes = {0, 256, 1024, 2048, 4096, 8192, 16384};
  opt.repetitions = 50;
  opt.warmup = 5;

  // Stock MVAPICH-0.9.2-era configuration.
  const auto stock = microbench::run_pingpong(core::ib_cluster(2), opt);

  // Hypothetical: 8 kB eager threshold (needs bigger vbufs) — trades
  // per-peer pinned memory for latency on mid-size messages, exactly the
  // trade-off the paper describes in Section 4.1.
  core::ClusterConfig tuned_cfg = core::ib_cluster(2);
  tuned_cfg.mvapich.eager_threshold = 8192;
  tuned_cfg.mvapich.vbuf_bytes = 8192 + 64;
  tuned_cfg.mvapich.ring_slots = 16;
  const auto tuned = microbench::run_pingpong(tuned_cfg, opt);

  std::printf("%10s %14s %18s\n", "bytes", "stock IB (us)", "8K-eager IB (us)");
  for (std::size_t i = 0; i < stock.size(); ++i) {
    std::printf("%10zu %14.2f %18.2f\n", stock[i].bytes, stock[i].latency_us,
                tuned[i].latency_us);
  }

  core::Cluster c(tuned_cfg);
  std::printf("\nper-rank pinned eager-ring memory at this setting, 64-rank "
              "job: %.1f MB vs stock %.1f MB\n",
              8256.0 * 16 * 2 * 63 / 1e6, 2048.0 * 32 * 2 * 63 / 1e6);
  std::printf("(The ring memory scales with the number of peers — the "
              "Section 4.1 constraint on how big 'short' can be.)\n");
  return 0;
}
