// Domain-scenario example: the Sweep3D neutron-transport wavefront on a
// 4x4 process grid, showing the pipeline structure and the physics
// checksum that the tests rely on.
//
//   $ ./build/examples/wavefront_sweep

#include <cstdio>

#include "apps/sweep3d/sweep.hpp"
#include "core/cluster.hpp"

int main() {
  using namespace icsim;

  apps::sweep::SweepConfig sc;
  sc.nx = sc.ny = 60;
  sc.nz = 60;
  sc.iterations = 3;

  std::printf("Sweep3D %dx%dx%d, %d source iterations, 16 ranks\n\n", sc.nx,
              sc.ny, sc.nz, sc.iterations);
  for (const auto net : {core::Network::infiniband, core::Network::quadrics}) {
    core::ClusterConfig cc = net == core::Network::infiniband
                                 ? core::ib_cluster(16, 1)
                                 : core::elan_cluster(16, 1);
    core::Cluster cluster(cc);
    apps::sweep::SweepResult result;
    cluster.run([&](mpi::Mpi& mpi) {
      const auto r = apps::sweep::run_sweep3d(mpi, sc);
      if (mpi.rank() == 0) result = r;
    });
    std::printf("%-18s solve %.3f s  grind %.1f ns/cell-angle  flux checksum "
                "%.6e  faces %.1f MB\n",
                core::to_string(net), result.solve_seconds, result.grind_ns,
                result.flux_sum,
                static_cast<double>(result.face_bytes) / 1e6);
  }
  std::printf("\nThe flux checksum is identical on both networks — the "
              "simulated MPI moves real data; only time differs.\n");
  return 0;
}
