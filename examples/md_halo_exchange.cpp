// Domain-scenario example: run the mini molecular-dynamics application
// (the paper's LAMMPS stand-in) on 8 nodes of each network, with and
// without communication/computation overlap, and report how much of the
// halo exchange each network hides.
//
//   $ ./build/examples/md_halo_exchange

#include <cstdio>

#include "apps/lammps/md.hpp"
#include "core/cluster.hpp"

namespace {

double run_md_case(icsim::core::Network net, bool overlap) {
  using namespace icsim;
  apps::md::MdConfig mc = apps::md::membrane_config();
  mc.cells_x = mc.cells_y = mc.cells_z = 6;
  mc.steps = 20;
  mc.overlap_comm = overlap;

  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(8, 1)
                               : core::elan_cluster(8, 1);
  core::Cluster cluster(cc);
  double seconds = 0.0;
  cluster.run([&](mpi::Mpi& mpi) {
    const auto r = apps::md::run_md(mpi, mc);
    if (mpi.rank() == 0) seconds = r.loop_seconds;
  });
  return seconds;
}

}  // namespace

int main() {
  using namespace icsim;
  std::printf("membrane MD on 8 nodes: effect of overlapping the halo "
              "exchange with interior forces\n\n");
  std::printf("%-18s %14s %14s %10s\n", "network", "blocking s", "overlapped s",
              "saved");
  for (const auto net : {core::Network::infiniband, core::Network::quadrics}) {
    const double blocking = run_md_case(net, false);
    const double overlapped = run_md_case(net, true);
    std::printf("%-18s %14.4f %14.4f %9.1f%%\n", core::to_string(net),
                blocking, overlapped,
                100.0 * (blocking - overlapped) / blocking);
  }
  std::printf("\nIndependent progress is what converts nonblocking calls "
              "into actual overlap: the Elan-4 NIC advances the protocol "
              "while the host computes; MVAPICH only advances inside MPI "
              "calls (paper Sections 3.3.3-3.3.5).\n");
  return 0;
}
