// Example: the same halo exchange on a healthy and a degraded fabric.
//
// Sixteen ranks run a 1-D periodic halo exchange.  The degraded runs add a
// fault plan to the cluster config: the up-cable the ring's cross-leaf
// traffic climbs through gets a high bit-error rate, and in a second run
// also goes down for a window mid-run.  Everything still completes —
// InfiniBand by RC timeout/retransmission, Elan-4 by hardware link retry,
// and both by routing around the dead cable — and the printed counters show
// the recovery working.
//
// The same plans work on any icsim binary without a rebuild, e.g.:
//   $ ICSIM_FAULTS="ber=1e-7; link s0.0-1.1 down@2ms:4ms" ./some_bench
//
//   $ ./build/examples/degraded_fabric

#include <cstdio>
#include <stdexcept>
#include <vector>

#include "core/cluster.hpp"
#include "fault/plan.hpp"

namespace {

using namespace icsim;

constexpr int kNodes = 16;
constexpr int kIterations = 200;
constexpr std::size_t kHaloBytes = 16384;

struct Result {
  double run_us = 0.0;
  core::Cluster::RunStats stats;
};

Result run_halo(core::Network net, const fault::FaultPlan& plan) {
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(kNodes)
                               : core::elan_cluster(kNodes);
  cc.faults = plan;
  core::Cluster cluster(cc);
  cluster.run([&](mpi::Mpi& mpi) {
    const int me = mpi.rank();
    const int left = (me + kNodes - 1) % kNodes;
    const int right = (me + 1) % kNodes;
    std::vector<std::byte> out_l(kHaloBytes), out_r(kHaloBytes);
    std::vector<std::byte> in_l(kHaloBytes), in_r(kHaloBytes);
    std::vector<mpi::Request> reqs(4);
    for (int it = 0; it < kIterations; ++it) {
      // Distinct tags per iteration and direction: retransmission can
      // reorder same-tag traffic, the halo pattern should not care.
      reqs[0] = mpi.irecv(in_l.data(), in_l.size(), left, 2 * it);
      reqs[1] = mpi.irecv(in_r.data(), in_r.size(), right, 2 * it + 1);
      reqs[2] = mpi.isend(out_r.data(), out_r.size(), right, 2 * it);
      reqs[3] = mpi.isend(out_l.data(), out_l.size(), left, 2 * it + 1);
      mpi.waitall(reqs);
    }
  });
  Result r;
  r.run_us = cluster.engine().now().to_us();
  r.stats = cluster.stats();
  return r;
}

// The up-cable a cross-leaf hop of the ring climbs through.  Failing a
// switch-to-switch cable (rather than an endpoint cable) leaves the fabric
// an alternate climb, so the outage is survivable by rerouting alone.
fault::LinkRef cross_leaf_cable(core::Network net) {
  core::ClusterConfig cc = net == core::Network::infiniband
                               ? core::ib_cluster(kNodes)
                               : core::elan_cluster(kNodes);
  core::Cluster cluster(cc);
  const auto& topo = cluster.fabric().topology();
  // 11 -> 12 crosses the 12-port IB leaf boundary; 3 -> 4 the 4-port Elan
  // one.  Both are hops the periodic ring actually takes.
  const int src = net == core::Network::infiniband ? 11 : 3;
  const int dst = net == core::Network::infiniband ? 12 : 4;
  for (const auto& h : topo.route(src, dst)) {
    if (h.kind == net::Hop::Kind::switch_to_switch &&
        h.to.level > h.from.level) {
      return fault::LinkRef::between(h.from, h.to);
    }
  }
  throw std::logic_error("ring route never crosses a leaf boundary");
}

void report(const char* name, const Result& r, const Result& clean,
            core::Network net) {
  const auto& s = r.stats;
  const std::uint64_t retries =
      net == core::Network::infiniband ? s.rc_retries : s.elan_link_retries;
  const std::uint64_t lost = s.rc_retry_exhausted +
                             s.elan_link_retry_exhausted + s.watchdog_timeouts;
  std::printf("  %-26s %9.0f us  x%.2f   corrupted %5llu  retries %5llu  "
              "rerouted %5llu  lost %llu\n",
              name, r.run_us, r.run_us / clean.run_us,
              static_cast<unsigned long long>(s.chunks_corrupted),
              static_cast<unsigned long long>(retries),
              static_cast<unsigned long long>(s.chunks_rerouted),
              static_cast<unsigned long long>(lost));
}

}  // namespace

int main() {
  std::printf("1-D periodic halo exchange, %d ranks, %zu-byte halos, %d "
              "iterations\n",
              kNodes, kHaloBytes, kIterations);
  for (const auto net : {core::Network::infiniband, core::Network::quadrics}) {
    const fault::LinkRef cable = cross_leaf_cable(net);
    std::printf("\n%s (flaky link: %s)\n", core::to_string(net),
                cable.to_string().c_str());

    const Result clean = run_halo(net, {});

    fault::FaultPlan flaky;  // CRC drops on one cable, always up
    flaky.seed = 7;
    flaky.link_ber.push_back({cable, 1e-6});
    const Result noisy = run_halo(net, flaky);

    fault::FaultPlan outage = flaky;  // same, plus a mid-run outage
    outage.link_windows.push_back({cable,
                                   sim::Time::us(0.3 * clean.run_us),
                                   sim::Time::us(0.6 * clean.run_us)});
    const Result downed = run_halo(net, outage);

    report("clean", clean, clean, net);
    report("ber 1e-6 on that link", noisy, clean, net);
    report("+ outage 30%..60%", downed, clean, net);
  }
  std::printf("\nLost messages stay zero: CRC drops are retransmitted (IB "
              "in software with\nbackoff, Elan-4 in link hardware) and the "
              "outage window is routed around.\n");
  return 0;
}
